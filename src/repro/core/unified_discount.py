"""The Unified Discount (UD) algorithm of Section 8.

Strategy (Section 7.2): offer one shared discount ``c`` to a chosen set of
users ``S`` and nothing to everyone else.  For fixed ``c`` the objective
``UI(S; c)`` is monotone and submodular in ``S`` (Theorem 8), so lazy
greedy on the RR hyper-graph earns the ``(1 - 1/e)`` guarantee; the outer
loop exhaustively searches ``c`` over a grid of "round" discounts
(5%, 10%, ..., 100% by default — "normally discount offered by companies is
a multiple of 5%").

Offering discount ``c`` to ``k`` users costs ``k * c``, so the seed budget
at discount ``c`` is ``k = floor(B / c)`` (capped at ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import Configuration
from repro.core.problem import CIMProblem
from repro.exceptions import SolverError
from repro.obs.context import get_metrics, get_tracer
from repro.rrset.coverage import weighted_max_coverage
from repro.rrset.hypergraph import RRHypergraph
from repro.runtime.deadline import DeadlineLike, as_deadline
from repro.utils.timing import TimingBreakdown

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.constraints import ResolvedConstraints

__all__ = ["UDResult", "UDGridPoint", "default_discount_grid", "unified_discount"]


@dataclass(frozen=True)
class UDGridPoint:
    """One evaluated unified discount: the data behind Figure 5."""

    discount: float
    num_targets: int
    spread_estimate: float


@dataclass
class UDResult:
    """Outcome of the Unified Discount algorithm."""

    configuration: Configuration
    best_discount: float
    targets: List[int]
    spread_estimate: float
    grid: List[UDGridPoint] = field(default_factory=list)
    #: True when a deadline cut the discount grid search short; the result
    #: is the best (c, S) among the grid points actually evaluated.
    deadline_expired: bool = False
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)


def default_discount_grid(step: float = 0.05) -> np.ndarray:
    """The paper's search grid: multiples of ``step`` up to 100%.

    Table 3 compares ``step = 0.05`` (default) against ``step = 0.01`` and
    finds the coarser grid loses almost nothing.
    """
    if not 0.0 < step <= 1.0:
        raise SolverError(f"step must lie in (0, 1], got {step}")
    count = int(round(1.0 / step))
    grid = step * np.arange(1, count + 1)
    return np.clip(grid, 0.0, 1.0)


def unified_discount(
    problem: CIMProblem,
    hypergraph: RRHypergraph,
    discount_grid: Optional[Sequence[float]] = None,
    step: float = 0.05,
    deadline: DeadlineLike = None,
    constraints: Optional["ResolvedConstraints"] = None,
) -> UDResult:
    """Run UD: grid-search the unified discount, greedy-select targets.

    Parameters
    ----------
    problem:
        The CIM instance (supplies curves and budget).
    hypergraph:
        Pre-built RR hyper-graph (shared with IM / CD in experiments).
    discount_grid:
        Explicit grid of unified discounts to try; overrides ``step``.
    step:
        Grid spacing when ``discount_grid`` is not given.
    deadline:
        Optional run budget, polled between grid points.  On expiry the
        best affordable ``(c, S)`` evaluated so far is returned with
        ``deadline_expired=True``; expiring before *any* grid point was
        scored raises :class:`~repro.exceptions.DeadlineExceeded`.
    constraints:
        Optional resolved solver constraints.  At each grid discount ``c``
        the greedy target pool is restricted to users whose cap admits
        ``c``, the per-discount seed budget uses the constrained budget,
        and grid points whose unified configuration violates a generic
        constraint part are skipped.  ``None`` runs the historical code
        path untouched.

    Returns the best ``(c, S)`` found plus the whole grid trace (Figure 5).
    """
    budget_clock = as_deadline(deadline)
    grid = (
        np.asarray(list(discount_grid), dtype=np.float64)
        if discount_grid is not None
        else default_discount_grid(step)
    )
    if grid.size == 0:
        raise SolverError("discount grid is empty")
    if np.any(grid <= 0.0) or np.any(grid > 1.0):
        raise SolverError("unified discounts must lie in (0, 1]")

    n = problem.num_nodes
    budget = problem.budget
    if constraints is not None:
        budget = min(budget, constraints.budget)
    timings = TimingBreakdown()
    trace: List[UDGridPoint] = []
    best: Optional[Tuple[float, List[int], float]] = None

    expired = False
    metrics = get_metrics()
    polls = 0
    with get_tracer().span("solver.ud", grid_size=int(grid.size)) as span:
        with timings.phase("grid_search"):
            for discount in grid:
                polls += 1
                if budget_clock.expired():
                    if best is None:
                        budget_clock.check("the first UD grid point")
                    expired = True
                    break
                num_targets = int(min(n, np.floor(budget / discount + 1e-9)))
                candidates = None
                if constraints is not None:
                    candidates = constraints.eligible_at(float(discount))
                    if candidates is not None:
                        num_targets = min(num_targets, int(candidates.size))
                if num_targets == 0:
                    continue
                node_probs = problem.population.probabilities_at(float(discount))
                coverage = weighted_max_coverage(
                    hypergraph, node_probs, num_targets, candidates=candidates
                )
                if constraints is not None and constraints.has_generic:
                    unified = np.zeros(n, dtype=np.float64)
                    unified[np.asarray(coverage.seeds, dtype=np.int64)] = float(
                        discount
                    )
                    if not constraints.is_satisfied(unified):
                        span.event(
                            "grid_point_skipped",
                            discount=float(discount),
                            reason="generic-constraint",
                        )
                        continue
                trace.append(
                    UDGridPoint(
                        discount=float(discount),
                        num_targets=len(coverage.seeds),
                        spread_estimate=coverage.spread_estimate,
                    )
                )
                span.event(
                    "grid_point",
                    discount=float(discount),
                    num_targets=len(coverage.seeds),
                    spread=float(coverage.spread_estimate),
                )
                if best is None or coverage.spread_estimate > best[2]:
                    best = (float(discount), coverage.seeds, coverage.spread_estimate)
        span.set(evaluated=len(trace), truncated=expired)
        if best is not None:
            span.set(best_discount=best[0], best_spread=float(best[2]))
        metrics.inc("ud.runs_total")
        metrics.inc("ud.grid_points_total", len(trace))
        metrics.inc("ud.deadline_polls_total", polls)
        if expired:
            metrics.inc("ud.deadline_expired_total")

    if best is None:
        raise SolverError(
            f"no grid discount is affordable under budget {budget}; "
            "add smaller discounts to the grid"
        )
    best_c, targets, spread = best
    configuration = Configuration.unified(targets, best_c, n).require_feasible(budget)
    if constraints is not None:
        constraints.require_satisfied(configuration.discounts)
    return UDResult(
        configuration=configuration,
        best_discount=best_c,
        targets=list(targets),
        spread_estimate=spread,
        grid=trace,
        deadline_expired=expired,
        timings=timings,
    )
