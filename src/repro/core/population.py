"""Assignment of seed-probability curves to the user population.

The paper synthesizes curves (Section 9.1): 85% of nodes get the sensitive
curve ``2c - c^2``, 10% the linear curve ``c``, 5% the insensitive curve
``c^2``, assigned uniformly at random.  Table 4 re-runs with (75/15/10) and
(65/20/15) mixtures.  :func:`paper_mixture` builds any of these.

:class:`CurvePopulation` stores one curve per node but evaluates
*vectorized by curve group*: nodes sharing a curve object are evaluated in
one array operation, which matters for hyper-graph objectives over large
``n``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.curves import (
    INSENSITIVE,
    LINEAR,
    SENSITIVE,
    SeedProbabilityCurve,
)
from repro.exceptions import CurveError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["CurvePopulation", "paper_mixture"]


class CurvePopulation:
    """Per-node seed-probability curves with group-vectorized evaluation."""

    def __init__(self, curves: Sequence[SeedProbabilityCurve]) -> None:
        if not curves:
            raise CurveError("population must contain at least one curve")
        self._curves: List[SeedProbabilityCurve] = list(curves)
        for index, curve in enumerate(self._curves):
            if not isinstance(curve, SeedProbabilityCurve):
                raise CurveError(
                    f"node {index}: expected SeedProbabilityCurve, got {type(curve).__name__}"
                )
            curve.validate()
        # Group node ids by curve identity for vectorized evaluation.
        groups: Dict[int, List[int]] = {}
        self._group_curves: Dict[int, SeedProbabilityCurve] = {}
        for node, curve in enumerate(self._curves):
            key = id(curve)
            groups.setdefault(key, []).append(node)
            self._group_curves[key] = curve
        self._groups = {key: np.asarray(nodes, dtype=np.int64) for key, nodes in groups.items()}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, num_nodes: int, curve: SeedProbabilityCurve) -> "CurvePopulation":
        """Every node shares one curve object."""
        return cls([curve] * num_nodes)

    @classmethod
    def from_mixture(
        cls,
        num_nodes: int,
        mixture: Sequence[Tuple[SeedProbabilityCurve, float]],
        seed: SeedLike = None,
    ) -> "CurvePopulation":
        """Randomly assign curves by the given ``(curve, fraction)`` mixture.

        Fractions must sum to 1 (within tolerance).  Counts are rounded to
        integers with the largest group absorbing the remainder, then the
        assignment is shuffled — exactly the paper's "randomly picked x%
        of nodes" protocol.
        """
        fractions = np.asarray([fraction for _, fraction in mixture], dtype=np.float64)
        if np.any(fractions < 0.0) or abs(float(fractions.sum()) - 1.0) > 1e-9:
            raise CurveError(f"mixture fractions must be >= 0 and sum to 1, got {fractions}")
        counts = np.floor(fractions * num_nodes).astype(np.int64)
        counts[int(np.argmax(counts))] += num_nodes - int(counts.sum())
        assignment: List[SeedProbabilityCurve] = []
        for (curve, _), count in zip(mixture, counts):
            assignment.extend([curve] * int(count))
        rng = as_generator(seed)
        order = rng.permutation(num_nodes)
        shuffled = [assignment[i] for i in order]
        return cls(shuffled)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._curves)

    @property
    def num_nodes(self) -> int:
        """Number of users in the population."""
        return len(self._curves)

    def curve(self, node: int) -> SeedProbabilityCurve:
        """The curve assigned to ``node``."""
        return self._curves[node]

    def probabilities(self, discounts: np.ndarray) -> np.ndarray:
        """Vectorized ``q_u = p_u(c_u)`` for a full discount vector."""
        discounts = np.asarray(discounts, dtype=np.float64)
        if discounts.shape != (self.num_nodes,):
            raise CurveError(
                f"discounts must have length n={self.num_nodes}, got {discounts.shape}"
            )
        out = np.empty(self.num_nodes, dtype=np.float64)
        for key, nodes in self._groups.items():
            out[nodes] = self._group_curves[key](discounts[nodes])
        return out

    def derivatives(self, discounts: np.ndarray) -> np.ndarray:
        """Vectorized ``p_u'(c_u)`` for a full discount vector."""
        discounts = np.asarray(discounts, dtype=np.float64)
        if discounts.shape != (self.num_nodes,):
            raise CurveError(
                f"discounts must have length n={self.num_nodes}, got {discounts.shape}"
            )
        out = np.empty(self.num_nodes, dtype=np.float64)
        for key, nodes in self._groups.items():
            out[nodes] = self._group_curves[key].derivative(discounts[nodes])
        return out

    def probabilities_at(self, discount: float) -> np.ndarray:
        """``q_u = p_u(c)`` at one shared discount (the UD inner loop)."""
        out = np.empty(self.num_nodes, dtype=np.float64)
        for key, nodes in self._groups.items():
            out[nodes] = self._group_curves[key](discount)
        return out

    def all_insensitive(self) -> bool:
        """Theorem 6 precondition: every user's curve has ``p(c) <= c``."""
        return all(
            self._group_curves[key].is_insensitive() for key in self._groups
        )

    def curve_counts(self) -> Dict[str, int]:
        """Histogram of curve names (for experiment reporting)."""
        histogram: Dict[str, int] = {}
        for key, nodes in self._groups.items():
            name = self._group_curves[key].name
            histogram[name] = histogram.get(name, 0) + int(nodes.size)
        return histogram


def paper_mixture(
    num_nodes: int,
    sensitive_fraction: float = 0.85,
    linear_fraction: float = 0.10,
    insensitive_fraction: float = 0.05,
    seed: SeedLike = None,
) -> CurvePopulation:
    """The experiment population of Section 9.1 (and Table 4 variants).

    Defaults to the paper's 85% sensitive (``2c - c^2``), 10% linear
    (``c``), 5% insensitive (``c^2``) split; Table 4 uses
    ``(0.75, 0.15, 0.10)`` and ``(0.65, 0.20, 0.15)``.
    """
    return CurvePopulation.from_mixture(
        num_nodes,
        [
            (SENSITIVE, sensitive_fraction),
            (LINEAR, linear_fraction),
            (INSENSITIVE, insensitive_fraction),
        ],
        seed=seed,
    )
