"""Algorithm 1: the general coordinate-descent framework.

Model-agnostic: takes *any* :class:`~repro.core.objective.SpreadOracle`
(exact, Monte-Carlo, or hyper-graph), so it solves CIM for any influence
model whose spread can be scored.  Each iteration picks a coordinate pair
``(c_i, c_j)``, holds everything else and the pair sum ``B' = c_i + c_j``
fixed, and maximizes the objective over
``c_i in [max(0, B' - 1), min(1, B')]`` (Eq. 7).

The 1-D maximization follows the paper's practical trick (Section 7.1): the
three coefficient sums of Eq. 9 are hard to estimate reliably, so instead
of solving ``dUI/dc_i = 0`` we evaluate the oracle on a discount grid (a
budget carries a minimum unit anyway) and keep the best point.

The objective never decreases across iterations (each pair step keeps the
incumbent as a candidate), which is the convergence argument of Section 5.2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import Configuration
from repro.core.objective import SpreadOracle
from repro.exceptions import ConfigurationError, SolverError
from repro.obs.context import get_metrics, get_tracer
from repro.runtime.deadline import DeadlineLike, as_deadline
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "CoordinateDescentResult",
    "coordinate_descent",
    "saturate_budget",
    "pair_grid_candidates",
]


@dataclass
class CoordinateDescentResult:
    """Outcome of a coordinate-descent run."""

    configuration: Configuration
    objective_value: float
    round_values: List[float] = field(default_factory=list)
    rounds_run: int = 0
    pair_updates: int = 0
    converged: bool = False
    #: True when a deadline stopped the descent before convergence or the
    #: round limit; the configuration is still feasible and no worse than
    #: the warm start (monotone improvement, Section 5.2).
    deadline_expired: bool = False


def saturate_budget(configuration: Configuration, budget: float) -> Configuration:
    """Scale a feasible configuration up to spend the budget exactly.

    Theorem 5 (monotonicity of ``UI``) implies the optimum uses the whole
    budget, so coordinate descent should start from a configuration with
    ``cost == min(B, n)``.  Leftover budget is poured uniformly into the
    coordinates with headroom, repeatedly, until exhausted.
    """
    arr = configuration.discounts.copy()
    target = min(budget, float(arr.size))
    if configuration.cost > target + 1e-9:
        raise ConfigurationError(
            f"configuration cost {configuration.cost:.6g} exceeds budget {budget:.6g}"
        )
    remaining = target - arr.sum()
    while remaining > 1e-12:
        headroom = 1.0 - arr
        open_nodes = np.flatnonzero(headroom > 1e-15)
        if open_nodes.size == 0:
            break
        per_node = remaining / open_nodes.size
        add = np.minimum(headroom[open_nodes], per_node)
        arr[open_nodes] += add
        remaining -= float(add.sum())
    return Configuration(arr)


def pair_grid_candidates(
    c_i: float, c_j: float, step: float, cap_i: float = 1.0, cap_j: float = 1.0
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Candidate values for a pair step.

    Returns ``(candidates_i, candidates_j, pair_budget)`` where
    ``candidates_j = pair_budget - candidates_i`` and the feasible interval
    is ``[max(0, B' - 1), min(1, B')]`` (Eq. 7).  The current ``c_i`` is
    always included so the incumbent can never be lost.

    Per-user caps shrink the interval to ``[max(0, B' - cap_j),
    min(cap_i, B')]`` — the feasible slice of the constrained problem at a
    fixed pair sum.  The defaults reproduce Eq. 7 exactly.
    """
    if step <= 0.0:
        raise SolverError(f"grid step must be positive, got {step}")
    pair_budget = c_i + c_j
    lo = max(0.0, pair_budget - cap_j)
    hi = min(cap_i, pair_budget)
    if hi < lo:  # numerically empty interval; keep the incumbent
        return np.asarray([c_i]), np.asarray([c_j]), pair_budget
    count = int(np.floor((hi - lo) / step + 1e-9)) + 1
    grid = lo + step * np.arange(count)
    grid = np.append(grid, (hi, c_i))
    grid = np.unique(np.clip(grid, lo, hi))
    return grid, pair_budget - grid, pair_budget


def _iterate_pairs(
    strategy: str,
    pairs: Sequence[Tuple[int, int]],
    rng: np.random.Generator,
) -> Iterator[Tuple[int, int]]:
    """Yield the coordinate pairs of one round under the given strategy.

    ``pairs`` is the pre-materialized cyclic schedule (a pure function of
    the coordinate set, so it is enumerated once per run, not per round);
    ``"random"`` shuffles a per-round copy, consuming the same RNG stream
    as the historical per-round materialization.
    """
    if strategy == "cyclic":
        yield from pairs
    elif strategy == "random":
        shuffled = list(pairs)
        rng.shuffle(shuffled)
        yield from shuffled
    else:
        raise SolverError(f"unknown pair strategy {strategy!r}")


def coordinate_descent(
    oracle: SpreadOracle,
    budget: float,
    initial: Configuration,
    grid_step: float = 0.05,
    max_rounds: int = 10,
    tolerance: float = 1e-9,
    pair_strategy: str = "cyclic",
    coordinates: Optional[Sequence[int]] = None,
    seed: SeedLike = None,
    deadline: DeadlineLike = None,
) -> CoordinateDescentResult:
    """Algorithm 1 with grid-based pair maximization.

    Parameters
    ----------
    oracle:
        Scores configurations; called ``O(pairs * grid)`` times per round.
    budget:
        The budget ``B``; the initial configuration is saturated to it.
    initial:
        Starting configuration (e.g. a discrete-IM integer configuration,
        per the Section-6 warm-start argument, or a UD configuration).
    grid_step:
        Discount granularity of the 1-D search (the "minimum budget unit").
    max_rounds:
        Each round visits every selected pair once; the paper uses <= 10.
    coordinates:
        Restrict pair selection to these coordinates (the Section-8 CD
        algorithm only optimizes over the non-zero coordinates of its warm
        start, for efficiency).  Default: all coordinates.
    pair_strategy:
        ``"cyclic"`` (deterministic sweep) or ``"random"``.
    deadline:
        Optional run budget (seconds or :class:`~repro.runtime.Deadline`),
        polled at every pair boundary.  On expiry the incumbent — always
        feasible, never worse than the warm start — is returned with
        ``deadline_expired=True``.
    """
    rng = as_generator(seed)
    budget_clock = as_deadline(deadline)
    config = saturate_budget(initial.require_feasible(budget), budget)
    n = len(config)
    if coordinates is None:
        coords = np.arange(n, dtype=np.int64)
    else:
        coords = np.unique(np.asarray(list(coordinates), dtype=np.int64))
        if coords.size and (coords[0] < 0 or coords[-1] >= n):
            raise SolverError("coordinate index out of range")
    if coords.size < 2:
        value = oracle.evaluate(config)
        return CoordinateDescentResult(
            configuration=config,
            objective_value=value,
            round_values=[value],
            rounds_run=0,
            converged=True,
        )

    current_value = oracle.evaluate(config)
    round_values = [current_value]
    all_pairs = list(itertools.combinations(coords.tolist(), 2))
    pair_updates = 0
    converged = False
    rounds_run = 0
    expired = False
    polls = 0
    metrics = get_metrics()
    with get_tracer().span(
        "solver.cd",
        engine="oracle",
        coordinates=int(coords.size),
        max_rounds=max_rounds,
        pair_strategy=pair_strategy,
    ) as span:
        for _ in range(max_rounds):
            rounds_run += 1
            round_start_value = current_value
            for i, j in _iterate_pairs(pair_strategy, all_pairs, rng):
                polls += 1
                if budget_clock.expired():
                    expired = True
                    break
                cand_i, cand_j, _ = pair_grid_candidates(config[i], config[j], grid_step)
                best_value = current_value
                best_pair = (config[i], config[j])
                for c_i, c_j in zip(cand_i, cand_j):
                    if c_i == config[i]:
                        continue  # incumbent already scored
                    candidate = config.with_pair(i, float(c_i), j, float(c_j))
                    value = oracle.evaluate(candidate)
                    if value > best_value + tolerance:
                        best_value = value
                        best_pair = (float(c_i), float(c_j))
                if best_pair != (config[i], config[j]):
                    config = config.with_pair(i, best_pair[0], j, best_pair[1])
                    current_value = best_value
                    pair_updates += 1
            round_values.append(current_value)
            span.event(
                "round",
                index=rounds_run - 1,
                value=float(current_value),
                gain=float(current_value - round_start_value),
                pair_updates=pair_updates,
            )
            if expired:
                break
            if current_value - round_start_value <= tolerance:
                converged = True
                break
        span.set(
            rounds_run=rounds_run,
            pair_updates=pair_updates,
            converged=converged,
            truncated=expired,
            objective_value=float(current_value),
        )
        metrics.inc("cd.runs_total")
        metrics.inc("cd.rounds_total", rounds_run)
        metrics.inc("cd.pair_updates_total", pair_updates)
        metrics.inc("cd.deadline_polls_total", polls)
        if expired:
            metrics.inc("cd.deadline_expired_total")
    return CoordinateDescentResult(
        configuration=config,
        objective_value=current_value,
        round_values=round_values,
        rounds_run=rounds_run,
        pair_updates=pair_updates,
        converged=converged,
        deadline_expired=expired,
    )
