"""Learning seed-probability curves from conversion data.

Section 3 of the paper: "the best way to decide a user's seed probability
function (purchase probability curve) is to learn from data.  Since seed
probability functions can take many different forms, it is important to
design a general marketing method that can handle all kinds of such
functions."  The solvers here handle any valid curve; this module supplies
the missing ingredient — estimators that turn logged
``(discount offered, converted?)`` observations into valid curves:

* :func:`fit_piecewise_curve` — nonparametric: bin the observations,
  take empirical conversion rates, enforce monotonicity with the
  pool-adjacent-violators algorithm (PAVA), and anchor the Section-3
  endpoints ``p(0) = 0``, ``p(1) = 1``.
* :func:`fit_power_curve` — parametric MLE for ``p(c) = c^a`` (the
  paper's sensitive/insensitive families are ``a = 1/2''ish`` and
  ``a = 2``); closed form: the score equation gives
  ``a`` as the root of a 1-D monotone function, solved by bisection.
* :func:`pava` — the isotonic-regression primitive, exposed because it is
  independently useful.

All fitters return ready-to-use
:class:`~repro.core.curves.SeedProbabilityCurve` objects that pass
``validate()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.curves import LogisticCurve, PiecewiseLinearCurve, PowerCurve
from repro.exceptions import CurveError

__all__ = [
    "Observation",
    "pava",
    "fit_piecewise_curve",
    "fit_power_curve",
    "fit_logistic_curve",
]


@dataclass(frozen=True)
class Observation:
    """One logged offer: the discount shown and whether the user converted."""

    discount: float
    converted: bool


def _validate_observations(
    observations: Sequence[Tuple[float, bool]],
) -> Tuple[np.ndarray, np.ndarray]:
    if not observations:
        raise CurveError("need at least one observation")
    discounts = np.empty(len(observations))
    outcomes = np.empty(len(observations))
    for index, obs in enumerate(observations):
        if isinstance(obs, Observation):
            discount, converted = obs.discount, obs.converted
        else:
            discount, converted = obs
        if not 0.0 <= discount <= 1.0:
            raise CurveError(f"observation {index}: discount {discount} not in [0, 1]")
        discounts[index] = discount
        outcomes[index] = 1.0 if converted else 0.0
    return discounts, outcomes


def pava(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Weighted isotonic regression (pool adjacent violators).

    Returns the non-decreasing sequence minimizing the weighted squared
    error to ``values``.

    >>> pava(np.array([1.0, 3.0, 2.0]), np.array([1.0, 1.0, 1.0])).tolist()
    [1.0, 2.5, 2.5]
    """
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if values.shape != weights.shape or values.ndim != 1:
        raise CurveError("values and weights must be 1-D and equal length")
    if np.any(weights <= 0.0):
        raise CurveError("weights must be positive")
    # Stack of (mean, weight, count) blocks.
    blocks: List[List[float]] = []
    for value, weight in zip(values, weights):
        blocks.append([float(value), float(weight), 1])
        while len(blocks) >= 2 and blocks[-2][0] > blocks[-1][0]:
            mean_b, weight_b, count_b = blocks.pop()
            mean_a, weight_a, count_a = blocks.pop()
            total = weight_a + weight_b
            blocks.append(
                [(mean_a * weight_a + mean_b * weight_b) / total, total, count_a + count_b]
            )
    out = np.empty_like(values)
    cursor = 0
    for mean, _, count in blocks:
        out[cursor : cursor + count] = mean
        cursor += count
    return out


def fit_piecewise_curve(
    observations: Sequence[Tuple[float, bool]],
    num_bins: int = 10,
    min_bin_count: int = 1,
) -> PiecewiseLinearCurve:
    """Nonparametric monotone fit of a purchase-probability curve.

    Observations are grouped into ``num_bins`` equal-width discount bins;
    each bin contributes its empirical conversion rate at its mean
    discount, weighted by its count; PAVA enforces monotonicity; the
    Section-3 endpoints are appended (overriding any conflicting empirical
    rate at the exact boundaries, where the axioms are definitional).
    """
    if num_bins < 1:
        raise CurveError(f"num_bins must be >= 1, got {num_bins}")
    discounts, outcomes = _validate_observations(observations)

    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bin_index = np.clip(np.digitize(discounts, edges) - 1, 0, num_bins - 1)
    xs: List[float] = []
    rates: List[float] = []
    weights: List[float] = []
    for b in range(num_bins):
        mask = bin_index == b
        count = int(mask.sum())
        if count < min_bin_count or count == 0:
            continue
        xs.append(float(discounts[mask].mean()))
        rates.append(float(outcomes[mask].mean()))
        weights.append(float(count))
    if not xs:
        raise CurveError("no bin has enough observations")

    iso = pava(np.asarray(rates), np.asarray(weights))
    knots: List[Tuple[float, float]] = [(0.0, 0.0)]
    for x, y in zip(xs, iso):
        if 0.0 < x < 1.0:
            # Clip into the open band so the endpoint knots stay extreme.
            knots.append((x, float(np.clip(y, 0.0, 1.0))))
    knots.append((1.0, 1.0))
    # Deduplicate x-coordinates (PiecewiseLinearCurve needs strict increase)
    # and re-run a final monotone pass including the endpoint anchors.
    unique: List[Tuple[float, float]] = []
    for x, y in knots:
        if unique and abs(x - unique[-1][0]) < 1e-12:
            unique[-1] = (unique[-1][0], max(unique[-1][1], y))
        else:
            unique.append((x, y))
    ys = pava(
        np.asarray([y for _, y in unique]),
        np.ones(len(unique)),
    )
    ys[0], ys[-1] = 0.0, 1.0
    ys = np.maximum.accumulate(np.clip(ys, 0.0, 1.0))
    ys[-1] = 1.0
    final = list(zip((x for x, _ in unique), ys))
    return PiecewiseLinearCurve(final)


def fit_power_curve(
    observations: Sequence[Tuple[float, bool]],
    min_exponent: float = 0.05,
    max_exponent: float = 20.0,
    tolerance: float = 1e-9,
) -> PowerCurve:
    """Maximum-likelihood fit of ``p(c) = c^a``.

    The log-likelihood ``sum_i [y_i * a * log c_i + (1 - y_i) *
    log(1 - c_i^a)]`` is concave in ``a``; its derivative is strictly
    decreasing, so the MLE is the bisection root of the score function.
    Observations at ``c = 0`` or ``c = 1`` carry no information about the
    exponent (the axioms pin those values) and are ignored.
    """
    discounts, outcomes = _validate_observations(observations)
    interior = (discounts > 0.0) & (discounts < 1.0)
    discounts, outcomes = discounts[interior], outcomes[interior]
    if discounts.size == 0:
        raise CurveError("need at least one observation with 0 < discount < 1")
    log_c = np.log(discounts)

    def score(a: float) -> float:
        powered = np.power(discounts, a)
        # d/da log L = sum y*log c - (1-y) * c^a log c / (1 - c^a)
        with np.errstate(divide="ignore", invalid="ignore"):
            negative_part = np.where(
                outcomes < 0.5, powered * log_c / np.maximum(1.0 - powered, 1e-300), 0.0
            )
        return float((outcomes * log_c).sum() - negative_part.sum())

    lo, hi = min_exponent, max_exponent
    score_lo, score_hi = score(lo), score(hi)
    # score is decreasing in a... (larger a, smaller p, conversions less
    # likely). Clamp when the optimum sits at a boundary.
    if score_lo <= 0.0:
        return PowerCurve(lo)
    if score_hi >= 0.0:
        return PowerCurve(hi)
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if score(mid) > 0.0:
            lo = mid
        else:
            hi = mid
    return PowerCurve((lo + hi) / 2.0)


def fit_logistic_curve(
    observations: Sequence[Tuple[float, bool]],
    steepness_bounds: Tuple[float, float] = (0.5, 30.0),
    midpoint_bounds: Tuple[float, float] = (0.05, 0.95),
    grid: int = 12,
) -> LogisticCurve:
    """Maximum-likelihood fit of the rescaled logistic family.

    Fits the two parameters of
    :class:`~repro.core.curves.LogisticCurve` (steepness ``k``, tipping
    point ``mid``) by maximizing the Bernoulli log-likelihood.  A coarse
    grid scan seeds a Nelder-Mead refinement (via scipy when available;
    otherwise the best grid point is returned) — the likelihood surface
    is smooth but not concave in ``(k, mid)``, so the scan guards against
    bad local optima.
    """
    discounts, outcomes = _validate_observations(observations)
    interior = (discounts > 0.0) & (discounts < 1.0)
    discounts, outcomes = discounts[interior], outcomes[interior]
    if discounts.size == 0:
        raise CurveError("need at least one observation with 0 < discount < 1")

    def negative_log_likelihood(params) -> float:
        steepness, midpoint = params
        if not steepness_bounds[0] <= steepness <= steepness_bounds[1]:
            return float("inf")
        if not midpoint_bounds[0] <= midpoint <= midpoint_bounds[1]:
            return float("inf")
        curve = LogisticCurve(steepness=float(steepness), midpoint=float(midpoint))
        p = np.clip(curve(discounts), 1e-12, 1.0 - 1e-12)
        return -float(
            (outcomes * np.log(p) + (1.0 - outcomes) * np.log(1.0 - p)).sum()
        )

    steep_grid = np.linspace(steepness_bounds[0], steepness_bounds[1], grid)
    mid_grid = np.linspace(midpoint_bounds[0], midpoint_bounds[1], grid)
    best_params = None
    best_value = float("inf")
    for steepness in steep_grid:
        for midpoint in mid_grid:
            value = negative_log_likelihood((steepness, midpoint))
            if value < best_value:
                best_value = value
                best_params = (float(steepness), float(midpoint))

    try:
        from scipy.optimize import minimize

        refined = minimize(
            negative_log_likelihood,
            x0=np.asarray(best_params),
            method="Nelder-Mead",
            options={"xatol": 1e-5, "fatol": 1e-8, "maxiter": 400},
        )
        if refined.fun < best_value:
            best_params = (float(refined.x[0]), float(refined.x[1]))
    except ImportError:  # pragma: no cover - scipy is an optional extra
        pass

    steepness = float(np.clip(best_params[0], *steepness_bounds))
    midpoint = float(np.clip(best_params[1], *midpoint_bounds))
    return LogisticCurve(steepness=steepness, midpoint=midpoint)
