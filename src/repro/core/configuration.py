"""Discount configurations (the decision variable of the CIM problem).

A configuration ``C = (c_1, ..., c_n)`` assigns each user a discount in
``[0, 1]``; its *cost* is ``sum_u c_u`` and it is feasible for budget ``B``
when the cost does not exceed ``B`` (Eq. 3).  *Integer* configurations
(every ``c_u`` in ``{0, 1}``) encode classical discrete-IM seed sets
(Eq. 4); *unified* configurations give one shared discount ``c`` to a
chosen set (Section 7.2).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.exceptions import BudgetError, ConfigurationError

__all__ = ["Configuration"]

_FEASIBILITY_TOLERANCE = 1e-9


class Configuration:
    """An immutable discount vector with feasibility helpers."""

    __slots__ = ("_discounts",)

    def __init__(self, discounts: Sequence[float]) -> None:
        arr = np.array(discounts, dtype=np.float64, copy=True)
        if arr.ndim != 1:
            raise ConfigurationError(f"discounts must be a 1-D vector, got shape {arr.shape}")
        if np.any(np.isnan(arr)):
            raise ConfigurationError("discounts contain NaN")
        if np.any(arr < -_FEASIBILITY_TOLERANCE) or np.any(arr > 1.0 + _FEASIBILITY_TOLERANCE):
            raise ConfigurationError("every discount must lie in [0, 1]")
        np.clip(arr, 0.0, 1.0, out=arr)
        arr.setflags(write=False)
        self._discounts = arr

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, num_nodes: int) -> "Configuration":
        """The all-zero (spend nothing) configuration."""
        return cls(np.zeros(num_nodes))

    @classmethod
    def integer(cls, seeds: Iterable[int], num_nodes: int) -> "Configuration":
        """Integer configuration: discount 1 on ``seeds``, 0 elsewhere.

        This is the embedding of a discrete-IM seed set into CIM's
        configuration space (Section 6).
        """
        arr = np.zeros(num_nodes)
        seed_arr = np.asarray(list(seeds), dtype=np.int64)
        if seed_arr.size and (seed_arr.min() < 0 or seed_arr.max() >= num_nodes):
            raise ConfigurationError("seed id out of range")
        arr[seed_arr] = 1.0
        return cls(arr)

    @classmethod
    def unified(cls, nodes: Iterable[int], discount: float, num_nodes: int) -> "Configuration":
        """Unified-discount configuration: ``discount`` on ``nodes``, else 0."""
        arr = np.zeros(num_nodes)
        node_arr = np.asarray(list(nodes), dtype=np.int64)
        if node_arr.size and (node_arr.min() < 0 or node_arr.max() >= num_nodes):
            raise ConfigurationError("node id out of range")
        arr[node_arr] = discount
        return cls(arr)

    @classmethod
    def uniform(cls, budget: float, num_nodes: int) -> "Configuration":
        """Spread the budget evenly: ``c_u = min(1, B / n)`` for all ``u``.

        The optimal strategy of the paper's Example 1 (isolated nodes with
        linear curves).
        """
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        return cls(np.full(num_nodes, min(1.0, budget / num_nodes)))

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def discounts(self) -> np.ndarray:
        """The (read-only) discount vector."""
        return self._discounts

    def __len__(self) -> int:
        return int(self._discounts.size)

    def __getitem__(self, node: int) -> float:
        return float(self._discounts[node])

    def __iter__(self):
        return iter(self._discounts)

    @property
    def cost(self) -> float:
        """Total spend ``sum_u c_u``."""
        return float(self._discounts.sum())

    @property
    def support(self) -> np.ndarray:
        """Ids of nodes receiving a strictly positive discount."""
        return np.flatnonzero(self._discounts > 0.0)

    @property
    def is_integer(self) -> bool:
        """Whether every discount is exactly 0 or 1 (an Eq.-4 configuration)."""
        return bool(np.all((self._discounts == 0.0) | (self._discounts == 1.0)))

    def seed_set(self) -> List[int]:
        """The seed set encoded by an integer configuration."""
        if not self.is_integer:
            raise ConfigurationError("configuration is not integer")
        return [int(u) for u in np.flatnonzero(self._discounts == 1.0)]

    # ------------------------------------------------------------------
    # feasibility
    # ------------------------------------------------------------------
    def is_feasible(self, budget: float) -> bool:
        """Whether ``cost <= budget`` (within tolerance)."""
        return self.cost <= budget + _FEASIBILITY_TOLERANCE

    def require_feasible(self, budget: float) -> "Configuration":
        """Raise :class:`BudgetError` unless feasible; returns ``self``."""
        if not self.is_feasible(budget):
            raise BudgetError(self.cost, budget)
        return self

    # ------------------------------------------------------------------
    # functional updates
    # ------------------------------------------------------------------
    def with_discount(self, node: int, value: float) -> "Configuration":
        """A copy with ``c_node`` replaced by ``value``."""
        arr = self._discounts.copy()
        arr[node] = value
        return Configuration(arr)

    def with_pair(self, i: int, c_i: float, j: int, c_j: float) -> "Configuration":
        """A copy with the coordinate pair ``(i, j)`` replaced.

        The coordinates must be distinct: with ``i == j`` the second write
        would silently win, corrupting pair steps that assume two
        independent coordinates.
        """
        if i == j:
            raise ConfigurationError(
                f"with_pair coordinates must be distinct, got i == j == {i}"
            )
        arr = self._discounts.copy()
        arr[i] = c_i
        arr[j] = c_j
        return Configuration(arr)

    def dominates(self, other: "Configuration") -> bool:
        """Pointwise ``self >= other`` (the partial order of Theorem 5)."""
        if len(self) != len(other):
            raise ConfigurationError("configurations have different lengths")
        return bool(np.all(self._discounts >= other._discounts - 1e-12))

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return np.array_equal(self._discounts, other._discounts)

    def __hash__(self) -> int:
        return hash(self._discounts.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        support = self.support
        return (
            f"Configuration(n={len(self)}, cost={self.cost:.4g}, "
            f"support={support.size})"
        )
