"""Composable solver constraints: limited access, caps, budgets.

The paper optimizes one global budget ``sum_u c_u <= B``, but a
production discount service must serve richer scenarios named by the
related work: *limited access*, where only a k-subset of users can be
offered discounts and the subset should be chosen spillover-aware (Feng
et al., arXiv:2010.01331); *partial / fractional incentives* with
per-user limits (Demaine et al., arXiv:1401.7970); and per-user budget
caps in the discount-allocation formulation (arXiv:1606.07916).  This
module turns those scenarios into :class:`Constraint` objects that every
solver respects through four hooks:

* **feasibility** — ``is_satisfied(c)``;
* **projection** — the Euclidean projection onto the feasible set, used
  by projected gradient ascent and to repair infeasible warm starts;
* **CD pair-step clamping** — per-coordinate caps shrink the feasible
  interval of the Eq.-7 line search, via
  :meth:`ResolvedConstraints.pair_caps`;
* **FW linear-maximizer restriction** — the greedy fill runs only over
  accessible coordinates up to their caps.

Every shipped constraint is *box∩simplex-representable*: its feasible
set is ``{0 <= c <= u} ∩ {sum c <= B}`` for some cap vector ``u`` and
scalar ``B``.  Intersections of such constraints are again of that form
(pointwise-min caps, min budget), so :class:`ComposedConstraint`
projects *exactly* through the :func:`~repro.core.gradient.project_box_simplex`
fast path — verified against a grid-search oracle in the property suite.
User-defined constraints that are not box-representable participate
through Dykstra's alternating projection instead (convergent to the
exact projection for convex sets).

Solvers receive a :class:`ResolvedConstraints` — the normalized
intersection of a constraint list, bound to a concrete problem (and
hyper-graph, for :class:`TopKAccess`).  A resolved set whose feasible
region contains the plain budget simplex is *trivial*:
:func:`repro.core.solvers.solve` then runs the historical unconstrained
code path, so slack constraints reproduce unconstrained results bit for
bit (the no-op composition guarantee pinned by the property suite).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.gradient import project_box_simplex
from repro.exceptions import ConstraintError

__all__ = [
    "Constraint",
    "BudgetConstraint",
    "PerUserCap",
    "AccessSet",
    "TopKAccess",
    "ComposedConstraint",
    "ResolvedConstraints",
    "resolve_constraints",
    "constraint_spec",
    "constraints_from_spec",
    "spillover_scores",
]

_TOLERANCE = 1e-9


class Constraint:
    """One feasibility restriction on a discount configuration.

    Subclasses describe their feasible set either *declaratively* —
    override :meth:`upper_bounds` and/or :meth:`sum_cap`, and every
    solver hook (projection, pair clamp, FW restriction) is derived
    exactly — or *operationally* for sets that are not a box∩simplex:
    override :meth:`project` and :meth:`is_satisfied` and leave
    ``box_representable`` False, which routes the constraint through
    Dykstra's alternating projection (the set must be convex for the
    projection to be exact).
    """

    #: Whether the feasible set is exactly ``{0<=c<=u} ∩ {sum c <= B}``
    #: for the ``upper_bounds()`` / ``sum_cap()`` this object reports.
    box_representable: bool = False

    # ------------------------------------------------------------------
    # declarative description (box∩simplex family)
    # ------------------------------------------------------------------
    def upper_bounds(self, num_nodes: int) -> Optional[np.ndarray]:
        """Per-user discount caps in ``[0, 1]``; ``None`` = no cap."""
        return None

    def sum_cap(self) -> Optional[float]:
        """Cap on ``sum_u c_u``; ``None`` = no sum restriction."""
        return None

    # ------------------------------------------------------------------
    # operational hooks (generic constraints)
    # ------------------------------------------------------------------
    def is_satisfied(self, discounts: np.ndarray, tolerance: float = _TOLERANCE) -> bool:
        """Whether ``discounts`` lies in the feasible set (within tolerance)."""
        c = np.asarray(discounts, dtype=np.float64)
        upper = self.upper_bounds(c.size)
        if upper is not None and np.any(c > upper + tolerance):
            return False
        cap = self.sum_cap()
        if cap is not None and float(c.sum()) > cap + tolerance:
            return False
        return True

    def project(self, x: np.ndarray) -> np.ndarray:
        """Euclidean projection of ``x`` onto the feasible set."""
        x = np.asarray(x, dtype=np.float64)
        upper = self.upper_bounds(x.size)
        cap = self.sum_cap()
        if cap is None:
            lo = np.clip(x, 0.0, 1.0 if upper is None else upper)
            return lo
        return project_box_simplex(x, cap, upper)

    # ------------------------------------------------------------------
    # resolution plumbing
    # ------------------------------------------------------------------
    def bind(self, problem, hypergraph=None) -> "Constraint":
        """Resolve problem-dependent parameters (default: already bound)."""
        return self

    def spec(self) -> Dict[str, object]:
        """JSON-safe description for content keys and the CLI round-trip."""
        raise NotImplementedError(
            f"{type(self).__name__} does not describe itself for content "
            "keys; override spec()"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        try:
            parts = ", ".join(f"{k}={v!r}" for k, v in self.spec().items() if k != "type")
            return f"{type(self).__name__}({parts})"
        except NotImplementedError:
            return type(self).__name__


class BudgetConstraint(Constraint):
    """``sum_u c_u <= budget`` — the paper's Eq.-3 constraint, explicit.

    Composing ``BudgetConstraint(problem.budget)`` with any solve is a
    no-op by construction; a *smaller* budget tightens the run without
    rebuilding the problem (e.g. what-if sweeps over one hyper-graph).
    """

    box_representable = True

    def __init__(self, budget: float) -> None:
        budget = float(budget)
        if not np.isfinite(budget) or budget < 0.0:
            raise ConstraintError(
                f"budget cap must be finite and non-negative, got {budget}"
            )
        self.budget = budget

    def sum_cap(self) -> Optional[float]:
        return self.budget

    def spec(self) -> Dict[str, object]:
        return {"type": "budget", "budget": self.budget}


class PerUserCap(Constraint):
    """``c_u <= cap_u`` — partial/fractional incentives with user limits.

    ``cap`` is either one scalar applied to every user or a full
    per-user vector in ``[0, 1]`` (Demaine et al.'s fractional-influence
    setting, arXiv:1401.7970: incentives may be split fractionally but
    no user absorbs more than their limit).
    """

    box_representable = True

    def __init__(self, cap: Union[float, Sequence[float], np.ndarray]) -> None:
        arr = np.asarray(cap, dtype=np.float64)
        if arr.ndim not in (0, 1):
            raise ConstraintError(
                f"cap must be a scalar or a 1-d vector, got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)) or np.any(arr < 0.0) or np.any(arr > 1.0):
            raise ConstraintError("per-user caps must lie in [0, 1]")
        self.cap = arr if arr.ndim == 1 else float(arr)

    def upper_bounds(self, num_nodes: int) -> Optional[np.ndarray]:
        if isinstance(self.cap, np.ndarray):
            if self.cap.size != num_nodes:
                raise ConstraintError(
                    f"cap vector has length {self.cap.size}, problem has "
                    f"{num_nodes} users"
                )
            return self.cap.astype(np.float64, copy=True)
        return np.full(num_nodes, self.cap, dtype=np.float64)

    def spec(self) -> Dict[str, object]:
        cap = self.cap.tolist() if isinstance(self.cap, np.ndarray) else self.cap
        return {"type": "cap", "cap": cap}


class AccessSet(Constraint):
    """Support restricted to an allowed subset: ``c_u = 0`` outside it.

    The *limited access* scenario (Feng et al., arXiv:2010.01331): only
    the named users can be offered discounts — everyone else benefits
    only through network spillover.  Equivalent to a cap of 0 on
    inaccessible users, so it composes exactly with every other box
    constraint.
    """

    box_representable = True

    def __init__(self, allowed: Iterable[int]) -> None:
        nodes = np.unique(np.asarray(list(allowed), dtype=np.int64))
        if nodes.size and nodes[0] < 0:
            raise ConstraintError("access set contains negative node ids")
        self.allowed = nodes

    def upper_bounds(self, num_nodes: int) -> Optional[np.ndarray]:
        if self.allowed.size and int(self.allowed[-1]) >= num_nodes:
            raise ConstraintError(
                f"access set names node {int(self.allowed[-1])}, problem has "
                f"{num_nodes} users"
            )
        upper = np.zeros(num_nodes, dtype=np.float64)
        upper[self.allowed] = 1.0
        return upper

    def spec(self) -> Dict[str, object]:
        return {"type": "access", "allowed": [int(u) for u in self.allowed]}


def spillover_scores(problem, hypergraph=None) -> np.ndarray:
    """Spillover-aware access scores: own reach plus discounted neighbor reach.

    Feng et al. (arXiv:2010.01331) select the accessible k-subset by how
    much influence it can *trigger*, not just hold: a user scores their
    own estimated reach plus the edge-probability-weighted reach of their
    out-neighbors (who they can seed indirectly through a cascade).  The
    per-node reach proxy is the RR hyper-graph degree when a hyper-graph
    is available (``n * deg_H(u) / theta`` estimates ``I({u})``), else
    the weighted out-degree.
    """
    graph = problem.graph
    n = graph.num_nodes
    if hypergraph is not None and hypergraph.num_hyperedges > 0:
        reach = hypergraph.degrees().astype(np.float64)
    else:
        reach = np.zeros(n, dtype=np.float64)
        np.add.at(
            reach,
            np.repeat(
                np.arange(n, dtype=np.int64),
                np.diff(graph.out_offsets).astype(np.int64),
            ),
            graph.out_probs,
        )
        reach += 1.0  # every node reaches itself
    sources = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(graph.out_offsets).astype(np.int64)
    )
    spill = np.zeros(n, dtype=np.float64)
    np.add.at(spill, sources, graph.out_probs * reach[graph.out_targets])
    return reach + spill


class TopKAccess(Constraint):
    """Limited access to the ``k`` best users by spillover-aware score.

    Unbound form of :class:`AccessSet`: the subset is *selected* at
    solve time, once the problem (and hyper-graph) are known —
    :meth:`bind` ranks users by :func:`spillover_scores` (ties broken by
    node id, so selection is deterministic) and returns the concrete
    :class:`AccessSet`.
    """

    box_representable = True

    def __init__(self, k: int) -> None:
        k = int(k)
        if k < 1:
            raise ConstraintError(f"k must be at least 1, got {k}")
        self.k = k

    def bind(self, problem, hypergraph=None) -> Constraint:
        scores = spillover_scores(problem, hypergraph)
        k = min(self.k, scores.size)
        order = np.argsort(-scores, kind="stable")
        return AccessSet(order[:k])

    def upper_bounds(self, num_nodes: int) -> Optional[np.ndarray]:
        raise ConstraintError(
            "TopKAccess must be bound to a problem before use; resolve it "
            "through solve(..., constraints=...) or call bind() yourself"
        )

    def spec(self) -> Dict[str, object]:
        return {"type": "topk", "k": self.k}


class ComposedConstraint(Constraint):
    """Intersection of several constraints.

    Box∩simplex-representable parts compose *exactly*: pointwise-minimum
    caps and minimum sum cap describe the intersection, and one
    :func:`~repro.core.gradient.project_box_simplex` call is its exact
    Euclidean projection (the verified fast path).  If any part is
    generic, projection falls back to Dykstra's alternating projection
    over the box∩simplex fast path plus each generic part — exact in the
    limit for convex parts; iteration is capped and the result is
    feasibility-checked.
    """

    def __init__(self, parts: Sequence[Constraint]) -> None:
        flat: List[Constraint] = []
        for part in parts:
            if isinstance(part, ComposedConstraint):
                flat.extend(part.parts)
            elif isinstance(part, Constraint):
                flat.append(part)
            else:
                raise ConstraintError(
                    f"expected Constraint instances, got {type(part).__name__}"
                )
        self.parts: Tuple[Constraint, ...] = tuple(flat)

    @property
    def box_representable(self) -> bool:  # type: ignore[override]
        return all(part.box_representable for part in self.parts)

    def bind(self, problem, hypergraph=None) -> "ComposedConstraint":
        return ComposedConstraint(
            [part.bind(problem, hypergraph) for part in self.parts]
        )

    def upper_bounds(self, num_nodes: int) -> Optional[np.ndarray]:
        upper: Optional[np.ndarray] = None
        for part in self.parts:
            bounds = part.upper_bounds(num_nodes)
            if bounds is None:
                continue
            upper = bounds if upper is None else np.minimum(upper, bounds)
        return upper

    def sum_cap(self) -> Optional[float]:
        caps = [part.sum_cap() for part in self.parts]
        caps = [cap for cap in caps if cap is not None]
        return min(caps) if caps else None

    def is_satisfied(self, discounts: np.ndarray, tolerance: float = _TOLERANCE) -> bool:
        return all(part.is_satisfied(discounts, tolerance) for part in self.parts)

    def project(
        self, x: np.ndarray, max_sweeps: int = 200, tolerance: float = 1e-10
    ) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        upper = self.upper_bounds(x.size)
        cap = self.sum_cap()
        budget = float("inf") if cap is None else cap
        generic = [part for part in self.parts if not part.box_representable]
        if not generic:
            if cap is None:
                return np.clip(x, 0.0, 1.0 if upper is None else upper)
            return project_box_simplex(x, cap, upper)
        return _dykstra(x, budget, upper, generic, max_sweeps, tolerance)

    def spec(self) -> Dict[str, object]:
        return {"type": "composed", "parts": [part.spec() for part in self.parts]}


def _dykstra(
    x: np.ndarray,
    budget: float,
    upper: Optional[np.ndarray],
    generic: Sequence[Constraint],
    max_sweeps: int,
    tolerance: float,
) -> np.ndarray:
    """Dykstra's alternating projection onto an intersection of convex sets.

    One set is the box∩simplex aggregate (projected exactly), the rest
    are the generic parts' own projections.  Unlike plain alternating
    projection, Dykstra's correction terms make the limit the *Euclidean*
    projection of ``x`` — not just some feasible point.
    """

    def box_project(z: np.ndarray) -> np.ndarray:
        if np.isinf(budget):
            return np.clip(z, 0.0, 1.0 if upper is None else upper)
        return project_box_simplex(z, budget, upper)

    projectors = [box_project] + [part.project for part in generic]
    point = x.copy()
    corrections = [np.zeros_like(x) for _ in projectors]
    for _ in range(max_sweeps):
        start = point.copy()
        for index, projector in enumerate(projectors):
            shifted = point + corrections[index]
            projected = np.asarray(projector(shifted), dtype=np.float64)
            corrections[index] = shifted - projected
            point = projected
        if float(np.abs(point - start).max(initial=0.0)) <= tolerance:
            break
    return point


# ----------------------------------------------------------------------
# resolution: constraint list -> one solver-facing view
# ----------------------------------------------------------------------
class ResolvedConstraints:
    """The normalized intersection of a constraint list, bound to a problem.

    This is the object solvers consume; it never needs re-binding.
    Attributes: ``budget`` — the effective sum cap (already min-ed with
    the problem budget); ``upper`` — per-user caps, or ``None`` when no
    user is capped below 1 (solvers then keep their historical
    uniform-cap arithmetic, the bit-identity anchor of the no-op
    guarantee); ``generic`` — constraint parts that are not
    box-representable.
    """

    def __init__(
        self,
        num_nodes: int,
        budget: float,
        upper: Optional[np.ndarray],
        generic: Tuple[Constraint, ...],
        parts: Tuple[Constraint, ...],
    ) -> None:
        self.num_nodes = num_nodes
        self.budget = budget
        self.upper = upper
        self.generic = generic
        self.parts = parts

    @property
    def has_generic(self) -> bool:
        return bool(self.generic)

    def is_trivial(self, problem_budget: float) -> bool:
        """Whether the feasible set contains the plain budget simplex."""
        return (
            self.upper is None
            and not self.generic
            and self.budget >= problem_budget - _TOLERANCE
        )

    # -- feasibility ----------------------------------------------------
    def is_satisfied(self, discounts: np.ndarray, tolerance: float = _TOLERANCE) -> bool:
        c = np.asarray(discounts, dtype=np.float64)
        if float(c.sum()) > self.budget + tolerance:
            return False
        if self.upper is not None and np.any(c > self.upper + tolerance):
            return False
        return all(part.is_satisfied(c, tolerance) for part in self.generic)

    def require_satisfied(self, discounts: np.ndarray) -> None:
        if not self.is_satisfied(discounts):
            raise ConstraintError(
                "configuration violates the active solver constraints "
                f"({self.describe()})"
            )

    # -- projection -----------------------------------------------------
    def project(self, x: np.ndarray) -> np.ndarray:
        """Euclidean projection onto the resolved feasible set.

        Exact single-pass fast path for the box∩simplex family; Dykstra
        when generic parts are present.
        """
        x = np.asarray(x, dtype=np.float64)
        if not self.generic:
            return project_box_simplex(x, self.budget, self.upper)
        return _dykstra(x, self.budget, self.upper, self.generic, 200, 1e-10)

    # -- CD pair-step clamp ---------------------------------------------
    def pair_caps(self, i: int, j: int) -> Tuple[float, float]:
        """Caps ``(u_i, u_j)`` clamping the Eq.-7 pair interval.

        The pair line search holds ``c_i + c_j`` fixed, so the feasible
        slice for ``c_i`` is ``[max(0, B' - u_j), min(u_i, B')]``.
        """
        if self.upper is None:
            return 1.0, 1.0
        return float(self.upper[i]), float(self.upper[j])

    def pair_candidate_mask(
        self,
        discounts: np.ndarray,
        i: int,
        j: int,
        candidates_i: np.ndarray,
        candidates_j: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Feasibility mask over pair-step candidates for generic parts.

        Box caps are already honoured by the clamped interval; this only
        screens candidates against generic constraints (full-vector
        checks, so it is only invoked when such parts exist).  Returns
        ``None`` when every candidate is feasible.
        """
        if not self.generic:
            return None
        mask = np.ones(candidates_i.size, dtype=bool)
        trial = np.asarray(discounts, dtype=np.float64).copy()
        for index in range(candidates_i.size):
            trial[i] = candidates_i[index]
            trial[j] = candidates_j[index]
            mask[index] = all(part.is_satisfied(trial) for part in self.generic)
        trial[i], trial[j] = discounts[i], discounts[j]
        return mask

    # -- UD support restriction ------------------------------------------
    def eligible_at(self, discount: float) -> Optional[np.ndarray]:
        """Nodes whose cap admits the unified discount ``c`` (UD hook).

        ``None`` means every node is eligible (no caps) — UD then keeps
        its historical candidate-free call.
        """
        if self.upper is None:
            return None
        return np.flatnonzero(self.upper >= discount - _TOLERANCE)

    # -- bookkeeping ----------------------------------------------------
    def spec(self) -> List[Dict[str, object]]:
        """Canonical JSON-safe description (content-key material)."""
        return [part.spec() for part in self.parts]

    def describe(self) -> str:
        kinds = ", ".join(part.spec()["type"] for part in self.parts)
        return f"budget<={self.budget:g}; parts=[{kinds}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResolvedConstraints({self.describe()})"


ConstraintLike = Union[Constraint, Sequence[Constraint], None]


def resolve_constraints(
    constraints: ConstraintLike, problem, hypergraph=None
) -> Optional[ResolvedConstraints]:
    """Bind and normalize a constraint list against one problem.

    Accepts ``None`` (returns ``None``), a single :class:`Constraint`,
    or a sequence of them.  Problem-dependent constraints
    (:class:`TopKAccess`) are bound here — pass the hyper-graph when one
    exists so the selection sees the Theorem-9 reach estimates.  The
    effective budget is ``min(problem.budget, every sum cap)``; caps from
    several parts intersect pointwise.
    """
    if constraints is None:
        return None
    if isinstance(constraints, Constraint):
        parts: List[Constraint] = [constraints]
    else:
        parts = list(constraints)
        if not all(isinstance(part, Constraint) for part in parts):
            bad = next(p for p in parts if not isinstance(p, Constraint))
            raise ConstraintError(
                f"constraints must be Constraint instances, got {type(bad).__name__}"
            )
    if not parts:
        return None
    composed = ComposedConstraint(parts).bind(problem, hypergraph)
    num_nodes = problem.num_nodes
    upper = composed.upper_bounds(num_nodes)
    if upper is not None and bool(np.all(upper >= 1.0 - _TOLERANCE)):
        upper = None  # no user capped below 1: keep the uniform-cap paths
    cap = composed.sum_cap()
    budget = float(problem.budget) if cap is None else min(float(problem.budget), cap)
    generic = tuple(part for part in composed.parts if not part.box_representable)
    return ResolvedConstraints(
        num_nodes=num_nodes,
        budget=budget,
        upper=upper,
        generic=generic,
        parts=composed.parts,
    )


# ----------------------------------------------------------------------
# spec round-trip (CLI / checkpoint keys)
# ----------------------------------------------------------------------
def constraint_spec(constraints: ConstraintLike) -> Optional[List[Dict[str, object]]]:
    """Canonical JSON-safe spec of a constraint list (``None`` when empty).

    This is what checkpoint content keys hash: two runs whose constraint
    lists describe the same feasible set the same way share cells, and a
    constrained run can never resume an unconstrained run's cells.
    """
    if constraints is None:
        return None
    parts = [constraints] if isinstance(constraints, Constraint) else list(constraints)
    if not parts:
        return None
    return [part.spec() for part in parts]


def constraints_from_spec(spec) -> List[Constraint]:
    """Rebuild constraints from their :meth:`Constraint.spec` output.

    Accepts one spec dict or a list of them (the ``--constraint-json``
    CLI payload).
    """
    if isinstance(spec, dict):
        spec = [spec]
    if not isinstance(spec, (list, tuple)):
        raise ConstraintError(
            f"constraint spec must be a dict or list of dicts, got {type(spec).__name__}"
        )
    out: List[Constraint] = []
    for entry in spec:
        if not isinstance(entry, dict) or "type" not in entry:
            raise ConstraintError(f"malformed constraint spec entry: {entry!r}")
        kind = entry["type"]
        try:
            if kind == "budget":
                out.append(BudgetConstraint(entry["budget"]))
            elif kind == "cap":
                out.append(PerUserCap(entry["cap"]))
            elif kind == "access":
                out.append(AccessSet(entry["allowed"]))
            elif kind == "topk":
                out.append(TopKAccess(entry["k"]))
            elif kind == "composed":
                out.append(ComposedConstraint(constraints_from_spec(entry["parts"])))
            else:
                raise ConstraintError(f"unknown constraint type {kind!r}")
        except KeyError as exc:
            raise ConstraintError(
                f"constraint spec {kind!r} is missing field {exc}"
            ) from None
    return out
