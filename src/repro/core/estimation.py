"""Sample-complexity formulas from Section 4 (Theorems 2 and 4).

These bounds answer "how many Monte-Carlo calls guarantee an
``(epsilon, delta)`` estimate of ``UI(C)``?":

* Theorem 2 — with an exact influence-spread oracle,
  ``N = n^2 ln(2/delta) / (2 eps^2 (sum_u p_u(c_u))^2)`` calls suffice.
* Theorem 4 — under IC/LT each simulated cascade costs ``O(m)``, giving
  total time ``O(m n^2 ln(1/delta) / (2 eps^2 (sum_u p_u(c_u))^2))``.

Here ``eps`` is *relative* error: the estimate lands within
``(1 ± eps) UI(C)`` with probability at least ``1 - delta``.  The bounds
use ``UI(C) >= sum_u p_u(c_u)`` (each expected seed contributes at least
itself) and Hoeffding's inequality with range ``[0, n]``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import EstimationError

__all__ = [
    "theorem2_sample_count",
    "theorem4_time_bound",
    "hoeffding_sample_count",
    "hoeffding_confidence",
]


def _check_eps_delta(epsilon: float, delta: float) -> None:
    if epsilon <= 0.0:
        raise EstimationError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise EstimationError(f"delta must lie in (0, 1), got {delta}")


def theorem2_sample_count(
    num_nodes: int,
    expected_seeds: float,
    epsilon: float,
    delta: float,
) -> int:
    """Theorem 2's oracle-call count for an ``(eps, delta)`` estimate.

    Parameters
    ----------
    num_nodes:
        ``n``.
    expected_seeds:
        ``sum_u p_u(c_u)`` — the expected seed count of the configuration
        (assumed ``Omega(1)`` by the paper).
    """
    _check_eps_delta(epsilon, delta)
    if expected_seeds <= 0.0:
        raise EstimationError(
            f"expected_seeds must be positive, got {expected_seeds}"
        )
    numerator = num_nodes * num_nodes * math.log(2.0 / delta)
    denominator = 2.0 * epsilon * epsilon * expected_seeds * expected_seeds
    return max(1, int(math.ceil(numerator / denominator)))


def theorem4_time_bound(
    num_nodes: int,
    num_edges: int,
    expected_seeds: float,
    epsilon: float,
    delta: float,
) -> float:
    """Theorem 4's total simulation-time bound for IC/LT (in edge-ops)."""
    _check_eps_delta(epsilon, delta)
    if expected_seeds <= 0.0:
        raise EstimationError(
            f"expected_seeds must be positive, got {expected_seeds}"
        )
    numerator = num_edges * num_nodes * num_nodes * math.log(1.0 / delta)
    denominator = 2.0 * epsilon * epsilon * expected_seeds * expected_seeds
    return numerator / denominator


def hoeffding_sample_count(value_range: float, absolute_error: float, delta: float) -> int:
    """Generic Hoeffding bound: samples for ``P(|mean err| > t) <= delta``.

    For i.i.d. samples in ``[0, value_range]``,
    ``N >= value_range^2 ln(2/delta) / (2 t^2)``.
    """
    if value_range <= 0.0:
        raise EstimationError(f"value_range must be positive, got {value_range}")
    _check_eps_delta(absolute_error, delta)
    n = value_range * value_range * math.log(2.0 / delta) / (2.0 * absolute_error**2)
    return max(1, int(math.ceil(n)))


def hoeffding_confidence(value_range: float, absolute_error: float, num_samples: int) -> float:
    """Probability bound ``delta`` achieved by ``num_samples`` samples."""
    if value_range <= 0.0 or absolute_error <= 0.0 or num_samples <= 0:
        raise EstimationError("all arguments must be positive")
    exponent = -2.0 * num_samples * absolute_error**2 / (value_range * value_range)
    return min(1.0, 2.0 * math.exp(exponent))
