"""Core CIM library: curves, configurations, problem, oracles, solvers."""

from repro.core.cd_hypergraph import HypergraphCDResult, coordinate_descent_hypergraph
from repro.core.configuration import Configuration
from repro.core.coordinate_descent import (
    CoordinateDescentResult,
    coordinate_descent,
    saturate_budget,
)
from repro.core.curves import (
    INSENSITIVE,
    LINEAR,
    SENSITIVE,
    CallableCurve,
    ConcaveCurve,
    LinearCurve,
    LogisticCurve,
    PiecewiseLinearCurve,
    PowerCurve,
    QuadraticCurve,
    SeedProbabilityCurve,
)
from repro.core.curve_fitting import (
    Observation,
    fit_logistic_curve,
    fit_piecewise_curve,
    fit_power_curve,
    pava,
)
from repro.core.estimation import theorem2_sample_count, theorem4_time_bound
from repro.core.exact_lt import ExactLTComputer, exact_spread_lt, exact_ui_lt
from repro.core.expected_budget import (
    coordinate_descent_expected,
    expected_cost,
    invert_expected_cost,
    unified_discount_expected,
)
from repro.core.exact import ExactICComputer, exact_spread_ic, exact_ui_ic
from repro.core.objective import (
    ExactOracle,
    FixedSampleOracle,
    HypergraphOracle,
    MonteCarloOracle,
    SpreadOracle,
)
from repro.core.population import CurvePopulation, paper_mixture
from repro.core.problem import CIMProblem
from repro.core.gradient import (
    GradientResult,
    frank_wolfe,
    fw_linear_maximizer,
    project_capped_simplex,
    projected_gradient_ascent,
)
from repro.core.solvers import (
    SolveResult,
    available_methods,
    register_solver,
    reset_solvers,
    solve,
    unregister_solver,
)
from repro.core.unified_discount import (
    UDGridPoint,
    UDResult,
    default_discount_grid,
    unified_discount,
)

__all__ = [
    "Configuration",
    "CIMProblem",
    "CurvePopulation",
    "paper_mixture",
    "SeedProbabilityCurve",
    "LinearCurve",
    "QuadraticCurve",
    "ConcaveCurve",
    "PowerCurve",
    "LogisticCurve",
    "PiecewiseLinearCurve",
    "CallableCurve",
    "SENSITIVE",
    "LINEAR",
    "INSENSITIVE",
    "SpreadOracle",
    "ExactOracle",
    "MonteCarloOracle",
    "HypergraphOracle",
    "FixedSampleOracle",
    "coordinate_descent",
    "CoordinateDescentResult",
    "saturate_budget",
    "unified_discount",
    "UDResult",
    "UDGridPoint",
    "default_discount_grid",
    "coordinate_descent_hypergraph",
    "HypergraphCDResult",
    "solve",
    "SolveResult",
    "available_methods",
    "register_solver",
    "unregister_solver",
    "reset_solvers",
    "GradientResult",
    "projected_gradient_ascent",
    "frank_wolfe",
    "project_capped_simplex",
    "fw_linear_maximizer",
    "ExactICComputer",
    "exact_spread_ic",
    "exact_ui_ic",
    "theorem2_sample_count",
    "theorem4_time_bound",
    "expected_cost",
    "invert_expected_cost",
    "unified_discount_expected",
    "coordinate_descent_expected",
    "Observation",
    "fit_piecewise_curve",
    "fit_power_curve",
    "fit_logistic_curve",
    "pava",
    "ExactLTComputer",
    "exact_spread_lt",
    "exact_ui_lt",
]
