"""Exact computation of ``I(S)`` and ``UI(C)`` on tiny IC graphs.

Computing either quantity exactly is #P-hard (Theorem 1), but for graphs
with at most ~20 edges we can enumerate the ``2^m`` live-edge outcomes of
the IC model.  With outcome ``L`` (a subgraph keeping each edge ``e``
independently with probability ``p_e``):

* ``I(S) = sum_L Pr[L] * |reach_L(S)|``, and
* because users seed independently,
  ``UI(C) = sum_L Pr[L] * sum_v (1 - prod_{u : v in reach_L(u)} (1 - q_u))``

— i.e. node ``v`` is activated under ``L`` unless *every* user that can
reach it declined to seed.  This avoids the extra ``2^n`` seed-set
enumeration entirely and is the ground truth against which all estimators
and solvers are tested.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import EstimationError
from repro.graphs.digraph import DiGraph

__all__ = ["ExactICComputer", "exact_spread_ic", "exact_ui_ic"]


class ExactICComputer:
    """Pre-enumerates all live-edge outcomes of an IC graph.

    For each outcome the boolean *reach matrix* ``R[u, v]`` (can ``u``
    reach ``v``?) is stored along with the outcome probability, after which
    both exact spreads are simple weighted sums.
    """

    def __init__(self, graph: DiGraph, max_edges: int = 20) -> None:
        if graph.num_edges > max_edges:
            raise EstimationError(
                f"exact computation is exponential in m; graph has "
                f"{graph.num_edges} > max_edges={max_edges} edges"
            )
        self.graph = graph
        self._outcome_probs: List[float] = []
        self._reach_matrices: List[np.ndarray] = []
        self._enumerate_outcomes()

    def _enumerate_outcomes(self) -> None:
        graph = self.graph
        n, m = graph.num_nodes, graph.num_edges
        edge_sources = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(graph.out_offsets).astype(np.int64)
        )
        edge_targets = graph.out_targets
        edge_probs = graph.out_probs
        for mask in range(1 << m):
            keep = np.array([(mask >> e) & 1 for e in range(m)], dtype=bool)
            prob = float(np.prod(np.where(keep, edge_probs, 1.0 - edge_probs)))
            if prob == 0.0:
                continue
            reach = np.eye(n, dtype=bool)
            adjacency = np.zeros((n, n), dtype=bool)
            adjacency[edge_sources[keep], edge_targets[keep]] = True
            # Transitive closure by repeated squaring of boolean reachability.
            frontier = adjacency.copy()
            while frontier.any():
                new_reach = reach | frontier
                if np.array_equal(new_reach, reach):
                    break
                reach = new_reach
                frontier = frontier @ adjacency
            self._outcome_probs.append(prob)
            self._reach_matrices.append(reach)

    # ------------------------------------------------------------------
    # exact quantities
    # ------------------------------------------------------------------
    def spread(self, seeds: Sequence[int]) -> float:
        """Exact ``I(S)``."""
        seed_arr = np.unique(np.asarray(list(seeds), dtype=np.int64))
        if seed_arr.size == 0:
            return 0.0
        if seed_arr.min() < 0 or seed_arr.max() >= self.graph.num_nodes:
            raise EstimationError("seed id out of range")
        total = 0.0
        for prob, reach in zip(self._outcome_probs, self._reach_matrices):
            reached = reach[seed_arr].any(axis=0)
            total += prob * float(reached.sum())
        return total

    def expected_spread(self, seed_probabilities: np.ndarray) -> float:
        """Exact ``UI(C)`` given per-node seed probabilities ``q_u``."""
        q = np.asarray(seed_probabilities, dtype=np.float64)
        if q.shape != (self.graph.num_nodes,):
            raise EstimationError(
                f"seed_probabilities must have length n={self.graph.num_nodes}"
            )
        if np.any(q < 0.0) or np.any(q > 1.0):
            raise EstimationError("seed probabilities must lie in [0, 1]")
        decline = 1.0 - q
        total = 0.0
        for prob, reach in zip(self._outcome_probs, self._reach_matrices):
            # activation_prob[v] = 1 - prod over u reaching v of (1 - q_u)
            with np.errstate(divide="ignore"):
                survive = np.where(reach, decline[:, None], 1.0).prod(axis=0)
            total += prob * float((1.0 - survive).sum())
        return total

    def activation_probabilities(self, seed_probabilities: np.ndarray) -> np.ndarray:
        """Exact per-node activation probability under configuration ``q``."""
        q = np.asarray(seed_probabilities, dtype=np.float64)
        decline = 1.0 - q
        result = np.zeros(self.graph.num_nodes)
        for prob, reach in zip(self._outcome_probs, self._reach_matrices):
            survive = np.where(reach, decline[:, None], 1.0).prod(axis=0)
            result += prob * (1.0 - survive)
        return result


def exact_spread_ic(graph: DiGraph, seeds: Sequence[int], max_edges: int = 20) -> float:
    """One-shot exact ``I(S)`` (builds the enumerator and discards it)."""
    return ExactICComputer(graph, max_edges=max_edges).spread(seeds)


def exact_ui_ic(
    graph: DiGraph, seed_probabilities: np.ndarray, max_edges: int = 20
) -> float:
    """One-shot exact ``UI(C)`` from per-node seed probabilities."""
    return ExactICComputer(graph, max_edges=max_edges).expected_spread(seed_probabilities)
