"""Expected-budget CIM — the paper's flagged future-work constraint.

Section 3 defines the budget as a *safe* (worst-case) budget: the company
reserves ``sum_u c_u``, paying whether or not users convert.  The paper
notes an alternative: "the expected budget under the discount rate
explanation" — the discount is only redeemed by users who actually buy, so
the expected spend of a configuration is

    EC(C) = sum_u  c_u * p_u(c_u).

This module implements CIM under ``EC(C) <= B``:

* :func:`expected_cost` — the constraint functional;
* :func:`invert_expected_cost` — bisection inverse of the per-user expected
  spend ``e_u(c) = c * p_u(c)`` (continuous, strictly increasing on the
  support of ``p_u``, with ``e_u(0) = 0`` and ``e_u(1) = 1``);
* :func:`unified_discount_expected` — UD where the target count at unified
  discount ``c`` is bounded by expected (not worst-case) spend, so the same
  budget reaches ``1 / p(c)`` times more users;
* :func:`coordinate_descent_expected` — pairwise coordinate descent whose
  moves preserve the *expected* pair spend: for a candidate ``c_i``, the
  partner ``c_j`` solves ``e_j(c_j) = E' - e_i(c_i)`` by bisection.

Because every user converts with probability at most 1, the expected spend
never exceeds the safe spend; an expected-budget configuration therefore
always weakly dominates the safe-budget one with the same ``B`` (verified
in the tests and the ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.configuration import Configuration
from repro.core.curves import SeedProbabilityCurve
from repro.core.population import CurvePopulation
from repro.core.problem import CIMProblem
from repro.core.unified_discount import default_discount_grid
from repro.exceptions import SolverError
from repro.rrset.estimator import HypergraphObjective
from repro.rrset.hypergraph import RRHypergraph

__all__ = [
    "expected_cost",
    "invert_expected_cost",
    "ExpectedUDResult",
    "unified_discount_expected",
    "ExpectedCDResult",
    "coordinate_descent_expected",
]

_BISECTION_TOLERANCE = 1e-10


def expected_cost(configuration: Configuration, population: CurvePopulation) -> float:
    """Expected spend ``EC(C) = sum_u c_u * p_u(c_u)``."""
    discounts = configuration.discounts
    return float((discounts * population.probabilities(discounts)).sum())


def invert_expected_cost(
    curve: SeedProbabilityCurve, target: float, tolerance: float = _BISECTION_TOLERANCE
) -> float:
    """The discount ``c`` whose expected spend ``c * p(c)`` equals ``target``.

    ``target`` must lie in ``[0, 1]`` (the range of ``e(c)``); values at the
    boundary return exactly 0 or 1.  Bisection is safe because ``e`` is
    continuous and non-decreasing with ``e(0) = 0``, ``e(1) = 1``.
    """
    if not 0.0 <= target <= 1.0:
        raise SolverError(f"target expected cost must lie in [0, 1], got {target}")
    if target <= 0.0:
        return 0.0
    if target >= 1.0:
        return 1.0
    lo, hi = 0.0, 1.0
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if mid * curve(mid) < target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


@dataclass
class ExpectedUDResult:
    """Outcome of expected-budget Unified Discount."""

    configuration: Configuration
    best_discount: float
    targets: List[int]
    spread_estimate: float
    expected_spend: float
    grid: List[dict] = field(default_factory=list)


def unified_discount_expected(
    problem: CIMProblem,
    hypergraph: RRHypergraph,
    discount_grid: Optional[Sequence[float]] = None,
    step: float = 0.05,
) -> ExpectedUDResult:
    """UD under the expected-budget constraint.

    At unified discount ``c`` the expected cost of targeting user ``u`` is
    ``c * p_u(c)``; greedy selection (CELF order, as in safe-budget UD)
    adds users while the accumulated expected spend stays within ``B``.
    Budget-feasibility is per the *expected* semantics — the worst-case
    spend of the result may exceed ``B``, which is exactly the point.
    """
    grid = (
        np.asarray(list(discount_grid), dtype=np.float64)
        if discount_grid is not None
        else default_discount_grid(step)
    )
    if grid.size == 0 or np.any(grid <= 0.0) or np.any(grid > 1.0):
        raise SolverError("unified discounts must lie in (0, 1]")

    population = problem.population
    n = problem.num_nodes
    best: Optional[tuple] = None
    trace: List[dict] = []
    for discount in grid:
        node_probs = population.probabilities_at(float(discount))
        node_costs = float(discount) * node_probs
        targets, covered = _greedy_under_cost(hypergraph, node_probs, node_costs, problem.budget)
        spread = hypergraph.num_nodes * covered / hypergraph.num_hyperedges
        spend = float(node_costs[targets].sum()) if targets.size else 0.0
        trace.append(
            {
                "discount": float(discount),
                "num_targets": int(targets.size),
                "spread": spread,
                "expected_spend": spend,
            }
        )
        if best is None or spread > best[2]:
            best = (float(discount), targets, spread, spend)

    if best is None or best[1].size == 0:
        raise SolverError("no affordable target set under the expected budget")
    best_c, targets, spread, spend = best
    configuration = Configuration.unified(targets.tolist(), best_c, n)
    return ExpectedUDResult(
        configuration=configuration,
        best_discount=best_c,
        targets=[int(u) for u in targets],
        spread_estimate=spread,
        expected_spend=spend,
        grid=trace,
    )


def _greedy_under_cost(
    hypergraph: RRHypergraph,
    node_probs: np.ndarray,
    node_costs: np.ndarray,
    budget: float,
) -> tuple:
    """Lazy greedy coverage, stopping when the cost budget is exhausted.

    Returns ``(selected_node_ids, weighted_covered)``.
    """
    import heapq

    survival = np.ones(hypergraph.num_hyperedges, dtype=np.float64)

    def gain_of(node: int) -> float:
        edges = hypergraph.incident_edges(node)
        if edges.size == 0:
            return 0.0
        return float(node_probs[node] * survival[edges].sum())

    heap = [(-gain_of(u), -1, u) for u in range(hypergraph.num_nodes)]
    heapq.heapify(heap)
    selected: List[int] = []
    spent = 0.0
    round_index = 0
    taken = np.zeros(hypergraph.num_nodes, dtype=bool)
    while heap:
        neg_gain, stamp, node = heapq.heappop(heap)
        if taken[node]:
            continue
        if spent + node_costs[node] > budget + 1e-12:
            continue  # unaffordable now; cheaper nodes may still fit
        if stamp != round_index:
            heapq.heappush(heap, (-gain_of(node), round_index, node))
            continue
        if -neg_gain <= 0.0:
            break
        selected.append(node)
        taken[node] = True
        spent += float(node_costs[node])
        survival[hypergraph.incident_edges(node)] *= 1.0 - node_probs[node]
        round_index += 1
    covered = float((1.0 - survival).sum())
    return np.asarray(selected, dtype=np.int64), covered


@dataclass
class ExpectedCDResult:
    """Outcome of expected-budget coordinate descent."""

    configuration: Configuration
    objective_value: float
    expected_spend: float
    round_values: List[float] = field(default_factory=list)
    rounds_run: int = 0
    pair_updates: int = 0
    converged: bool = False


def coordinate_descent_expected(
    problem: CIMProblem,
    hypergraph: RRHypergraph,
    initial: Configuration,
    grid_step: float = 0.02,
    max_rounds: int = 10,
    tolerance: float = 1e-9,
) -> ExpectedCDResult:
    """Pairwise coordinate descent preserving the expected pair spend.

    For each support pair ``(i, j)`` with pair expected spend
    ``E' = e_i(c_i) + e_j(c_j)``, candidate values of ``c_i`` walk a grid
    and the partner discount solves ``e_j(c_j) = E' - e_i(c_i)`` by
    bisection — so every visited configuration has exactly the initial
    expected spend, and the objective never decreases.
    """
    import itertools

    population = problem.population
    discounts = initial.discounts.copy()
    objective = HypergraphObjective(hypergraph, population.probabilities(discounts))
    current_value = objective.value()
    round_values = [current_value]
    coords = initial.support
    if coords.size < 2:
        return ExpectedCDResult(
            configuration=Configuration(discounts),
            objective_value=current_value,
            expected_spend=expected_cost(Configuration(discounts), population),
            round_values=round_values,
            converged=True,
        )

    pair_updates = 0
    rounds_run = 0
    converged = False
    for _ in range(max_rounds):
        rounds_run += 1
        round_start = current_value
        for i, j in itertools.combinations(coords.tolist(), 2):
            curve_i, curve_j = population.curve(i), population.curve(j)
            e_i = discounts[i] * curve_i(float(discounts[i]))
            e_j = discounts[j] * curve_j(float(discounts[j]))
            pair_spend = float(e_i + e_j)
            coefficients = objective.pair_coefficients(i, j)

            best_value = current_value
            best_pair = (float(discounts[i]), float(discounts[j]))
            for c_i in np.arange(0.0, 1.0 + 1e-9, grid_step):
                spend_i = c_i * curve_i(float(c_i))
                remainder = pair_spend - spend_i
                if remainder < -1e-12 or remainder > 1.0:
                    continue
                c_j = invert_expected_cost(curve_j, min(max(remainder, 0.0), 1.0))
                value = coefficients.value(float(curve_i(c_i)), float(curve_j(c_j)))
                if value > best_value + tolerance:
                    best_value = value
                    best_pair = (float(c_i), float(c_j))
            if best_pair != (float(discounts[i]), float(discounts[j])):
                discounts[i], discounts[j] = best_pair
                objective.set_probability(i, float(curve_i(best_pair[0])))
                objective.set_probability(j, float(curve_j(best_pair[1])))
                current_value = objective.value()
                pair_updates += 1
        round_values.append(current_value)
        if current_value - round_start <= tolerance:
            converged = True
            break

    configuration = Configuration(discounts)
    return ExpectedCDResult(
        configuration=configuration,
        objective_value=current_value,
        expected_spend=expected_cost(configuration, population),
        round_values=round_values,
        rounds_run=rounds_run,
        pair_updates=pair_updates,
        converged=converged,
    )
