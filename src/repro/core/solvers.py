"""Uniform solver facade: one entry point for IM / UD / CD and baselines.

``solve(problem, method=...)`` runs any registered strategy and returns a
:class:`SolveResult` whose spread estimate is computed with the *same*
Theorem-9 hyper-graph estimator for every method, so results are directly
comparable (the experimental protocol of Section 9: all algorithms run on
the same random hyper-graph ``H``).

Registered methods
------------------
``im``       discrete influence maximization (RR-set max coverage),
             embedded as an integer configuration with ``floor(B)`` seeds.
``ud``       Unified Discount (Section 8).
``cd``       Coordinate Descent warm-started from UD (Section 8).
``cd-im``    Coordinate Descent warm-started from the IM integer
             configuration (the Section-6 "no worse than IM" argument).
``gradient`` projected gradient ascent on the hyper-graph objective
             (capped-simplex projection + Armijo backtracking), warm-started
             from UD; reports a certified duality gap in ``extras``.
``fw``       Frank-Wolfe: projection-free conditional gradient whose
             linear step is a top-k greedy fill of the budget.
``greedy``   greedy fractional allocation: the budget flows in small
             increments to the best marginal-gain user (an alternative
             heuristic the paper does not evaluate).
``uniform``  spread the budget evenly over all users (Example 1 optimum).
``random``   random feasible configuration (sanity floor).
``degree``   integer configuration on the top out-degree nodes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

import numpy as np

from repro.core.cd_hypergraph import coordinate_descent_hypergraph
from repro.core.configuration import Configuration
from repro.core.objective import HypergraphOracle
from repro.core.problem import CIMProblem
from repro.core.unified_discount import unified_discount
from repro.discrete.heuristics import degree_seeds
from repro.exceptions import PartialResultWarning, SolverError
from repro.obs.context import get_tracer, observe
from repro.obs.metrics import MetricsRegistry
from repro.rrset.coverage import max_coverage
from repro.rrset.hypergraph import RRHypergraph
from repro.rrset.sample_size import default_num_rr_sets
from repro.runtime.deadline import Deadline, DeadlineLike, as_deadline
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import TimingBreakdown

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.constraints import ConstraintLike, ResolvedConstraints

__all__ = [
    "SolveResult",
    "solve",
    "available_methods",
    "register_solver",
    "unregister_solver",
    "reset_solvers",
    "solver_supports_constraints",
]


@dataclass
class SolveResult:
    """Outcome of one solver run."""

    method: str
    configuration: Configuration
    spread_estimate: float
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def cost(self) -> float:
        """Budget actually spent by the returned configuration."""
        return self.configuration.cost


def _solve_im(problem, hypergraph, seed, options) -> tuple[Configuration, dict]:
    k = int(np.floor(problem.budget + 1e-9))
    if k == 0:
        raise SolverError("discrete IM needs budget >= 1 (whole seeds)")
    coverage = max_coverage(hypergraph, k)
    config = Configuration.integer(coverage.seeds, problem.num_nodes)
    return config, {"seeds": coverage.seeds, "coverage": coverage.covered}


def _solve_ud(problem, hypergraph, seed, options) -> tuple[Configuration, dict]:
    result = unified_discount(
        problem,
        hypergraph,
        discount_grid=options.get("discount_grid"),
        step=options.get("step", 0.05),
        deadline=options.get("deadline"),
        constraints=options.get("constraints"),
    )
    return result.configuration, {
        "best_discount": result.best_discount,
        "targets": result.targets,
        "grid": result.grid,
        "deadline_expired": result.deadline_expired,
    }


def _solve_cd(problem, hypergraph, seed, options) -> tuple[Configuration, dict]:
    constraints = options.get("constraints")
    try:
        ud_result = unified_discount(
            problem,
            hypergraph,
            discount_grid=options.get("discount_grid"),
            step=options.get("step", 0.05),
            deadline=options.get("deadline"),
            constraints=constraints,
        )
        warm_start = ud_result.configuration
        warm_label = "ud"
        ud_discount = ud_result.best_discount
        ud_expired = ud_result.deadline_expired
    except SolverError:
        # Under generic constraints the whole unified family c·1_S can be
        # infeasible (UD then has no grid point to offer).  Descent does
        # not need the warm start to exist — degrade to a feasible cold
        # start instead of failing the solve.
        if constraints is None or not constraints.has_generic:
            raise
        warm_start = Configuration(
            constraints.project(np.zeros(problem.num_nodes))
        )
        warm_label = "cold"
        ud_discount = None
        ud_expired = False
    cd_result = coordinate_descent_hypergraph(
        problem,
        hypergraph,
        warm_start,
        grid_step=options.get("grid_step", 0.01),
        max_rounds=options.get("max_rounds", 10),
        refine_iterations=options.get("refine_iterations", 25),
        pair_strategy=options.get("pair_strategy", "cyclic"),
        deadline=options.get("deadline"),
        constraints=constraints,
    )
    return cd_result.configuration, {
        "warm_start": warm_label,
        "ud_discount": ud_discount,
        "rounds_run": cd_result.rounds_run,
        "pair_updates": cd_result.pair_updates,
        "round_values": cd_result.round_values,
        "converged": cd_result.converged,
        "deadline_expired": ud_expired or cd_result.deadline_expired,
    }


def _solve_cd_im(problem, hypergraph, seed, options) -> tuple[Configuration, dict]:
    im_config, im_extras = _solve_im(problem, hypergraph, seed, options)
    # An integer warm start is a fixed point of support-restricted pairwise
    # CD: every support pair sits at (1, 1), so its feasible interval
    # [max(0, B'-1), min(1, B')] collapses to the single point {1}.  Budget
    # can only flow *out* of the seeds if promising zero coordinates join
    # the pair set — we add the highest hyper-graph-degree non-seeds.
    support = im_config.support
    degrees = hypergraph.degrees()
    by_degree = np.argsort(-degrees, kind="stable")
    in_support = np.zeros(problem.num_nodes, dtype=bool)
    in_support[support] = True
    extra = [int(u) for u in by_degree if not in_support[u]][: max(1, support.size)]
    coordinates = np.concatenate([support, np.asarray(extra, dtype=np.int64)])
    cd_result = coordinate_descent_hypergraph(
        problem,
        hypergraph,
        im_config,
        grid_step=options.get("grid_step", 0.01),
        max_rounds=options.get("max_rounds", 10),
        refine_iterations=options.get("refine_iterations", 25),
        coordinates=coordinates,
        deadline=options.get("deadline"),
        constraints=options.get("constraints"),
    )
    return cd_result.configuration, {
        "warm_start": "im",
        "im_seeds": im_extras["seeds"],
        "rounds_run": cd_result.rounds_run,
        "round_values": cd_result.round_values,
        "deadline_expired": cd_result.deadline_expired,
    }


def _gradient_warm_start(problem, hypergraph, options) -> tuple[Configuration, dict]:
    """Resolve the ``warm_start`` option shared by gradient and FW."""
    warm = options.get("warm_start", "ud")
    if warm == "ud":
        ud_result = unified_discount(
            problem,
            hypergraph,
            discount_grid=options.get("discount_grid"),
            step=options.get("step", 0.05),
            deadline=options.get("deadline"),
            constraints=options.get("constraints"),
        )
        return ud_result.configuration, {
            "warm_start": "ud",
            "ud_discount": ud_result.best_discount,
            "deadline_expired": ud_result.deadline_expired,
        }
    if warm == "zeros":
        return Configuration.zeros(problem.num_nodes), {
            "warm_start": "zeros",
            "deadline_expired": False,
        }
    if warm == "uniform":
        return Configuration.uniform(problem.budget, problem.num_nodes), {
            "warm_start": "uniform",
            "deadline_expired": False,
        }
    raise SolverError(
        f"unknown warm_start {warm!r}; choose 'ud', 'zeros' or 'uniform'"
    )


def _gradient_extras(result, warm_extras: dict) -> dict:
    extras = dict(warm_extras)
    extras.update(
        steps_run=result.steps_run,
        backtracks=result.backtracks,
        objective_evals=result.objective_evals,
        gradient_evals=result.gradient_evals,
        step_values=result.step_values,
        converged=result.converged,
        duality_gap=result.duality_gap,
        budget_spent=result.budget_spent,
        deadline_expired=warm_extras.get("deadline_expired", False)
        or result.deadline_expired,
    )
    if result.fw_gap is not None:
        extras["fw_gap"] = result.fw_gap
    return extras


def _solve_gradient(problem, hypergraph, seed, options) -> tuple[Configuration, dict]:
    from repro.core.gradient import projected_gradient_ascent

    initial, warm_extras = _gradient_warm_start(problem, hypergraph, options)
    result = projected_gradient_ascent(
        problem,
        hypergraph,
        initial,
        step_size=options.get("step_size", 0.5),
        max_steps=options.get("max_steps", 200),
        tolerance=options.get("tolerance", 1e-3),
        deadline=options.get("deadline"),
        constraints=options.get("constraints"),
    )
    return result.configuration, _gradient_extras(result, warm_extras)


def _solve_fw(problem, hypergraph, seed, options) -> tuple[Configuration, dict]:
    from repro.core.gradient import frank_wolfe

    options = dict(options)
    options.setdefault("warm_start", "zeros")
    initial, warm_extras = _gradient_warm_start(problem, hypergraph, options)
    result = frank_wolfe(
        problem,
        hypergraph,
        initial,
        max_steps=options.get("max_steps", 200),
        tolerance=options.get("tolerance", 1e-3),
        deadline=options.get("deadline"),
        constraints=options.get("constraints"),
    )
    return result.configuration, _gradient_extras(result, warm_extras)


def _solve_greedy(problem, hypergraph, seed, options) -> tuple[Configuration, dict]:
    from repro.core.greedy_allocation import greedy_allocation

    result = greedy_allocation(
        problem, hypergraph, delta=options.get("delta", 0.05)
    )
    return result.configuration, {"increments": result.increments}


def _solve_uniform(problem, hypergraph, seed, options) -> tuple[Configuration, dict]:
    return Configuration.uniform(problem.budget, problem.num_nodes), {}


def _solve_random(problem, hypergraph, seed, options) -> tuple[Configuration, dict]:
    rng = as_generator(seed)
    # Random point of the budget simplex via Dirichlet, clipped to [0, 1];
    # clipping only lowers cost, so feasibility is preserved.
    weights = rng.dirichlet(np.ones(problem.num_nodes))
    discounts = np.minimum(1.0, weights * problem.budget)
    return Configuration(discounts), {}


def _solve_degree(problem, hypergraph, seed, options) -> tuple[Configuration, dict]:
    k = int(np.floor(problem.budget + 1e-9))
    if k == 0:
        raise SolverError("degree seeding needs budget >= 1 (whole seeds)")
    seeds = degree_seeds(problem.graph, k)
    return Configuration.integer(seeds, problem.num_nodes), {"seeds": seeds}


_SolverFn = Callable[[CIMProblem, RRHypergraph, SeedLike, dict], tuple]


@dataclass(frozen=True)
class _SolverEntry:
    """One registry row: the strategy plus its capability flags.

    ``supports_constraints`` marks strategies that consume
    ``options["constraints"]`` natively; :func:`solve` projects the output
    of unaware strategies onto the feasible set instead (and tags the
    result ``extras["constraints_projected"]``).
    """

    fn: _SolverFn
    supports_constraints: bool = False


_REGISTRY: Dict[str, _SolverEntry] = {
    "im": _SolverEntry(_solve_im),
    "ud": _SolverEntry(_solve_ud, supports_constraints=True),
    "cd": _SolverEntry(_solve_cd, supports_constraints=True),
    "cd-im": _SolverEntry(_solve_cd_im, supports_constraints=True),
    "gradient": _SolverEntry(_solve_gradient, supports_constraints=True),
    "fw": _SolverEntry(_solve_fw, supports_constraints=True),
    "greedy": _SolverEntry(_solve_greedy),
    "uniform": _SolverEntry(_solve_uniform),
    "random": _SolverEntry(_solve_random),
    "degree": _SolverEntry(_solve_degree),
}

#: Immutable snapshot of the built-in strategies *with their capability
#: flags*, taken at import time — the restore point of
#: :func:`reset_solvers`.  Snapshotting whole entries (not bare callables)
#: is what lets a reset restore a built-in's constraint support after it
#: was shadowed by a constraint-wrapped re-registration.
_BUILTINS: Dict[str, _SolverEntry] = dict(_REGISTRY)

#: Methods whose descent the adaptive driver can run per instalment.
_ADAPTIVE_OPTIMIZERS = ("cd", "gradient", "fw")


def available_methods() -> List[str]:
    """Names accepted by :func:`solve`."""
    return sorted(_REGISTRY)


def solver_supports_constraints(name: str) -> bool:
    """Whether a registered strategy consumes ``constraints=`` natively.

    Unaware strategies still work under constraints — :func:`solve`
    projects their output onto the feasible set — but only native support
    optimizes *within* the feasible set.
    """
    try:
        return _REGISTRY[name].supports_constraints
    except KeyError:
        raise SolverError(f"no solver named {name!r}") from None


def register_solver(
    name: str,
    solver: _SolverFn,
    overwrite: bool = False,
    supports_constraints: bool = False,
) -> None:
    """Register a custom strategy with :func:`solve`.

    ``solver`` receives ``(problem, hypergraph, seed, options)`` and must
    return ``(configuration, extras_dict)``; the returned configuration is
    feasibility-checked and scored with the shared Theorem-9 estimator
    like every built-in.  Overwriting a built-in requires
    ``overwrite=True`` (guards against accidental shadowing).

    Pass ``supports_constraints=True`` when the strategy consumes
    ``options["constraints"]`` (a
    :class:`~repro.core.constraints.ResolvedConstraints`) itself;
    otherwise :func:`solve` enforces active constraints by projecting the
    strategy's output onto the feasible set.
    """
    if not name or not isinstance(name, str):
        raise SolverError(f"solver name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not overwrite:
        raise SolverError(
            f"solver {name!r} already registered; pass overwrite=True to replace"
        )
    if not callable(solver):
        raise SolverError("solver must be callable")
    _REGISTRY[name] = _SolverEntry(solver, supports_constraints=supports_constraints)


def unregister_solver(name: str) -> None:
    """Remove a strategy from the registry.

    Built-ins may also be removed (e.g. to shadow-test a replacement);
    :func:`reset_solvers` restores the pristine built-in registry at any
    time — no interpreter restart needed.
    """
    try:
        del _REGISTRY[name]
    except KeyError:
        raise SolverError(f"no solver named {name!r}") from None


def reset_solvers() -> None:
    """Restore the registry to the import-time built-in snapshot.

    Re-registers every built-in strategy *with its original capability
    flags* (undoing any :func:`unregister_solver` of them, and undoing
    flag changes from overwriting re-registrations) and drops all custom
    strategies added with :func:`register_solver`.
    """
    _REGISTRY.clear()
    _REGISTRY.update(_BUILTINS)


def solve(
    problem: CIMProblem,
    method: str = "cd",
    hypergraph: Optional[RRHypergraph] = None,
    num_hyperedges: Union[int, str, None] = None,
    seed: SeedLike = None,
    deadline: DeadlineLike = None,
    workers: Optional[int] = None,
    supervision: "SupervisionLike" = None,
    constraints: "ConstraintLike" = None,
    storage: Optional[str] = None,
    slab_dir=None,
    backing: Optional[str] = None,
    spill_dir=None,
    **options,
) -> SolveResult:
    """Run one CIM strategy end to end.

    Parameters
    ----------
    problem:
        The CIM instance.
    method:
        One of :func:`available_methods`.
    hypergraph:
        Pass a pre-built hyper-graph to share it across methods; otherwise
        one is built (and its build time recorded in the ``hypergraph``
        timing phase — the decomposition of Figure 6).
    num_hyperedges / seed:
        Hyper-graph size and RNG seed when building here.  ``"auto"``
        runs the adaptive doubling driver
        (:func:`repro.rrset.adaptive.adaptive_hypergraph`) instead of a
        fixed-θ build: sampling stops once the incumbent UI(C) estimate
        is certified.  Driver knobs travel in ``options["adaptive"]``
        (a dict of ``epsilon``, ``max_theta``, ``checkpoint_dir``, ...).
        For ``method="cd"`` the driver's own warm-started descent *is*
        the solve — its certified configuration is returned directly,
        with the doubling trace in ``extras["adaptive"]``; other methods
        run normally on the adaptively-sized hyper-graph.  Incompatible
        with a prebuilt ``hypergraph``.
    deadline:
        Optional wall-clock budget for the *whole* run (seconds or a
        shared :class:`~repro.runtime.Deadline`): hyper-graph construction
        and the solver draw it down together.  On expiry the run degrades
        instead of failing — it returns a budget-feasible configuration
        built from the work done so far, tags it ``extras["partial"] is
        True`` and issues a :class:`~repro.exceptions.PartialResultWarning`.
        Only if *nothing* usable was produced (e.g. the deadline expired
        before a single RR set was sampled) does
        :class:`~repro.exceptions.DeadlineExceeded` escape.
    workers:
        Parallel sampling processes for hyper-graph construction
        (``"auto"`` = one per CPU).  Never changes results — only
        wall-clock time.
    supervision:
        Worker-pool recovery policy for the pooled build (a
        :class:`~repro.parallel.SupervisionPolicy` or a dict of its
        fields; see :mod:`repro.parallel.supervisor`).  A quarantined
        poison chunk or salvaged instalment degrades through the same
        partial-result contract as a deadline expiry.
    constraints:
        Optional solver constraints — a single
        :class:`~repro.core.constraints.Constraint` or a list of them
        (their intersection).  Constraint-aware methods (``ud``, ``cd``,
        ``cd-im``, ``gradient``, ``fw``) optimize *within* the feasible
        set; the output of unaware strategies is projected onto it (and
        tagged ``extras["constraints_projected"]``).  Constraints whose
        feasible set contains the plain budget simplex are *trivial* and
        reduce to the unconstrained code path, so slack constraints
        reproduce unconstrained results bit for bit at any worker count.
        Active constraints are recorded in ``extras["constraints"]`` and
        the returned configuration is verified feasible.
    storage / slab_dir:
        RR-set transport for the hyper-graph build: ``"heap"`` (default)
        pickles sampled chunks back through the pool, ``"shared"`` has
        workers write member streams into memory-mapped slabs under
        ``slab_dir`` (:mod:`repro.rrset.storage`).  Never changes
        results — both modes are bit-identical; ignored when a prebuilt
        ``hypergraph`` is passed.
    backing / spill_dir:
        Where the assembled hyper-graph CSR lives: ``"heap"`` (default)
        or ``"mmap"`` — spill files under ``spill_dir``
        (``REPRO_SPILL_DIR`` or the system temp dir), keeping the
        coordinator's resident set independent of θ.  Requires
        ``storage="shared"``; like ``storage``, never changes results
        and is ignored with a prebuilt ``hypergraph``.
    options:
        Method-specific knobs (``step``, ``grid_step``, ``max_rounds``...).
    """
    try:
        entry = _REGISTRY[method]
    except KeyError:
        raise SolverError(
            f"unknown method {method!r}; choose from {available_methods()}"
        ) from None
    solver = entry.fn

    run_budget: Deadline = as_deadline(deadline)
    options = dict(options)
    options.setdefault("deadline", run_budget)
    adaptive_options = dict(options.pop("adaptive", None) or {})
    if num_hyperedges == "auto" and hypergraph is not None:
        raise SolverError(
            "num_hyperedges='auto' cannot be combined with a prebuilt hypergraph"
        )
    if adaptive_options and num_hyperedges != "auto":
        raise SolverError("options['adaptive'] requires num_hyperedges='auto'")

    def resolve(bound_hypergraph) -> Optional["ResolvedConstraints"]:
        """Bind ``constraints`` and drop them when trivially slack.

        The trivial→``None`` reduction is the no-op composition
        guarantee: a slack constraint list runs the *identical* code
        path as no constraints at all, so results match bit for bit.
        """
        if constraints is None:
            return None
        from repro.core.constraints import resolve_constraints

        resolved = resolve_constraints(constraints, problem, bound_hypergraph)
        if resolved is not None and resolved.is_trivial(problem.budget):
            return None
        return resolved

    resolved_constraints: Optional["ResolvedConstraints"] = None
    timings = TimingBreakdown()
    adaptive_result = None
    hypergraph_truncated = False
    # Metrics for this call land in a private registry so the
    # extras["metrics"] snapshot depends only on this run, then merge
    # into whatever registry the caller installed (see repro.obs).
    run_metrics = MetricsRegistry()
    with observe(metrics=run_metrics), get_tracer().span("solve", method=method) as span:
        if hypergraph is None and num_hyperedges == "auto":
            from repro.rrset.adaptive import adaptive_hypergraph

            if method in _ADAPTIVE_OPTIMIZERS:
                # Let the driver run *this* method's descent per instalment
                # so its certified incumbent is the solve result.
                adaptive_options.setdefault("optimizer", method)
            # The driver needs constraints before any hyper-graph exists,
            # so TopKAccess binds against the weighted out-degree proxy
            # here (deterministic, hyper-graph-free).
            resolved_constraints = resolve(None)
            with timings.phase("hypergraph"):
                adaptive_options.setdefault("storage", storage)
                adaptive_options.setdefault("slab_dir", slab_dir)
                adaptive_options.setdefault("backing", backing)
                adaptive_options.setdefault("spill_dir", spill_dir)
                adaptive_result = adaptive_hypergraph(
                    problem,
                    seed=seed,
                    deadline=run_budget,
                    workers=workers,
                    supervision=supervision,
                    constraints=resolved_constraints,
                    **adaptive_options,
                )
            hypergraph = adaptive_result.hypergraph
            hypergraph_truncated = adaptive_result.stop_reason in (
                "deadline",
                "fault",
            )
        elif hypergraph is None:
            requested = (
                num_hyperedges
                if num_hyperedges is not None
                else default_num_rr_sets(problem.num_nodes)
            )
            with timings.phase("hypergraph"):
                hypergraph = problem.build_hypergraph(
                    num_hyperedges=requested,
                    seed=seed,
                    deadline=run_budget,
                    workers=workers,
                    supervision=supervision,
                    storage=storage,
                    slab_dir=slab_dir,
                    backing=backing,
                    spill_dir=spill_dir,
                )
            hypergraph_truncated = hypergraph.num_hyperedges < requested
        else:
            run_metrics.inc("solver.hypergraph_reuse_total")
            if num_hyperedges is not None:
                # A caller handing over a prebuilt hyper-graph *and* a
                # requested size is declaring intent; a smaller graph (e.g.
                # deadline-truncated sampling) taints every estimate
                # computed on it.
                hypergraph_truncated = hypergraph.num_hyperedges < num_hyperedges
        if adaptive_result is None:
            resolved_constraints = resolve(hypergraph)
        if resolved_constraints is not None and entry.supports_constraints:
            options["constraints"] = resolved_constraints
        with timings.phase(method):
            if (
                adaptive_result is not None
                and adaptive_options.get("optimizer", "cd") == method
            ):
                # The driver already alternated UD warm-start with this
                # method's descent at every doubling — its incumbent IS the
                # solution on the final hyper-graph; re-running would
                # duplicate the work.
                configuration = adaptive_result.configuration
                extras = {"warm_start": "ud"}
                inner = adaptive_result.cd_result
                if inner is not None:
                    if method == "cd":
                        extras.update(
                            rounds_run=inner.rounds_run,
                            pair_updates=inner.pair_updates,
                            round_values=inner.round_values,
                            converged=inner.converged,
                        )
                    else:
                        extras = _gradient_extras(inner, extras)
                extras["deadline_expired"] = adaptive_result.stop_reason == "deadline"
            else:
                configuration, extras = solver(problem, hypergraph, seed, options)
        if resolved_constraints is not None and not entry.supports_constraints:
            # Constraint-unaware strategy: enforce feasibility by
            # projecting its output onto the feasible set.
            projected = resolved_constraints.project(configuration.discounts)
            if not np.array_equal(projected, configuration.discounts):
                configuration = Configuration(projected)
                extras["constraints_projected"] = True
        if adaptive_result is not None:
            extras["adaptive"] = {
                "stop_reason": adaptive_result.stop_reason,
                "theta": adaptive_result.theta,
                "epsilon_bound": adaptive_result.epsilon_bound,
                "stages": adaptive_result.stages,
                "checkpoint_hits": adaptive_result.checkpoint_hits,
            }

        configuration.require_feasible(problem.budget)
        if resolved_constraints is not None:
            resolved_constraints.require_satisfied(configuration.discounts)
            extras["constraints"] = resolved_constraints.spec()
            span.set(constrained=True)
        oracle = HypergraphOracle(hypergraph, problem.population)
        estimate = oracle.evaluate(configuration)
        extras["num_hyperedges"] = hypergraph.num_hyperedges
        partial = bool(hypergraph_truncated or extras.get("deadline_expired", False))
        extras["partial"] = partial
        span.set(
            num_hyperedges=hypergraph.num_hyperedges,
            partial=partial,
            spread_estimate=float(estimate),
        )
        run_metrics.inc("solver.runs_total")
        run_metrics.set_gauge("solver.num_hyperedges", hypergraph.num_hyperedges)
        if partial:
            run_metrics.inc("solver.partial_total")
        extras["metrics"] = run_metrics.snapshot()
    if partial:
        warnings.warn(
            f"solver {method!r} hit its deadline and returned a truncated "
            "(but budget-feasible) result",
            PartialResultWarning,
            stacklevel=2,
        )
    return SolveResult(
        method=method,
        configuration=configuration,
        spread_estimate=estimate,
        timings=timings,
        extras=extras,
    )
