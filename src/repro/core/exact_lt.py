"""Exact computation of ``I(S)`` and ``UI(C)`` under Linear Threshold.

The LT model's live-edge distribution picks, for each node ``v``
*independently*, at most one incoming edge: edge ``(u, v)`` with
probability ``w(u, v)`` and no edge with probability ``1 - sum_u w(u, v)``
(Kempe et al. 2003, Claim 2.6).  Enumerating the product space of per-node
choices — ``prod_v (in_degree(v) + 1)`` outcomes — therefore yields exact
LT spreads on small graphs, mirroring :mod:`repro.core.exact` for IC.

Used by tests as ground truth for the LT simulator, the LT RR-set sampler
and the hyper-graph estimator under LT.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

import numpy as np

from repro.exceptions import EstimationError
from repro.graphs.digraph import DiGraph

__all__ = ["ExactLTComputer", "exact_spread_lt", "exact_ui_lt"]


class ExactLTComputer:
    """Pre-enumerates all LT live-edge outcomes of a small graph."""

    def __init__(self, graph: DiGraph, max_outcomes: int = 200_000) -> None:
        self.graph = graph
        n = graph.num_nodes
        # Per-node choice lists: (probability, source or None).
        choices: List[List[tuple]] = []
        outcome_count = 1
        for v in range(n):
            sources = graph.in_neighbors(v)
            weights = graph.in_edge_probs(v)
            total = float(weights.sum())
            if total > 1.0 + 1e-9:
                raise EstimationError(
                    f"LT requires in-weight sums <= 1; node {v} has {total:.6f}"
                )
            node_choices = [(1.0 - total, None)]
            node_choices.extend(
                (float(w), int(u)) for u, w in zip(sources, weights)
            )
            choices.append(node_choices)
            outcome_count *= len(node_choices)
            if outcome_count > max_outcomes:
                raise EstimationError(
                    f"LT enumeration needs {outcome_count}+ outcomes "
                    f"> max_outcomes={max_outcomes}"
                )
        self._outcome_probs: List[float] = []
        self._reach_matrices: List[np.ndarray] = []
        self._enumerate(choices)

    def _enumerate(self, choices: List[List[tuple]]) -> None:
        n = self.graph.num_nodes
        for combo in itertools.product(*choices):
            prob = 1.0
            adjacency = np.zeros((n, n), dtype=bool)
            for v, (p, source) in enumerate(combo):
                prob *= p
                if prob == 0.0:
                    break
                if source is not None:
                    adjacency[source, v] = True
            if prob == 0.0:
                continue
            reach = np.eye(n, dtype=bool)
            frontier = adjacency.copy()
            while frontier.any():
                new_reach = reach | frontier
                if np.array_equal(new_reach, reach):
                    break
                reach = new_reach
                frontier = frontier @ adjacency
            self._outcome_probs.append(prob)
            self._reach_matrices.append(reach)

    def spread(self, seeds: Sequence[int]) -> float:
        """Exact LT influence spread ``I(S)``."""
        seed_arr = np.unique(np.asarray(list(seeds), dtype=np.int64))
        if seed_arr.size == 0:
            return 0.0
        if seed_arr.min() < 0 or seed_arr.max() >= self.graph.num_nodes:
            raise EstimationError("seed id out of range")
        total = 0.0
        for prob, reach in zip(self._outcome_probs, self._reach_matrices):
            total += prob * float(reach[seed_arr].any(axis=0).sum())
        return total

    def expected_spread(self, seed_probabilities: np.ndarray) -> float:
        """Exact ``UI(C)`` under LT from per-node seed probabilities."""
        q = np.asarray(seed_probabilities, dtype=np.float64)
        if q.shape != (self.graph.num_nodes,):
            raise EstimationError(
                f"seed_probabilities must have length n={self.graph.num_nodes}"
            )
        if np.any(q < 0.0) or np.any(q > 1.0):
            raise EstimationError("seed probabilities must lie in [0, 1]")
        decline = 1.0 - q
        total = 0.0
        for prob, reach in zip(self._outcome_probs, self._reach_matrices):
            survive = np.where(reach, decline[:, None], 1.0).prod(axis=0)
            total += prob * float((1.0 - survive).sum())
        return total


def exact_spread_lt(graph: DiGraph, seeds: Sequence[int], max_outcomes: int = 200_000) -> float:
    """One-shot exact LT ``I(S)``."""
    return ExactLTComputer(graph, max_outcomes=max_outcomes).spread(seeds)


def exact_ui_lt(
    graph: DiGraph, seed_probabilities: np.ndarray, max_outcomes: int = 200_000
) -> float:
    """One-shot exact LT ``UI(C)``."""
    return ExactLTComputer(graph, max_outcomes=max_outcomes).expected_spread(
        seed_probabilities
    )
