"""The Coordinate Descent (CD) algorithm of Section 8.

Coordinate descent specialized to the RR hyper-graph objective (Eq. 14)::

    maximize  sum_h [ 1 - prod_{u in h} (1 - p_u(c_u)) ]
    s.t.      0 <= c_u <= 1,  sum_u c_u <= B

Warm-started from the Unified Discount configuration; per the paper, pairs
are picked only among coordinates that are *non-zero in the warm start*
(the UD support has at most ``B / 5% = O(B)`` entries, and ``B << n``), and
at most 10 rounds are run — "The algorithm converges within 10 rounds in
all cases in our experiments."

Each pair step is exact up to grid resolution: the objective restricted to
``(c_i, c_j = B' - c_i)`` has the closed form of Eq. 9, whose coefficients
the incremental :class:`~repro.rrset.estimator.HypergraphObjective`
maintains, so scoring a whole grid of candidates is one vectorized
evaluation — no re-estimation noise, no Theorem-7 small-gain detection
problem.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.constraints import ResolvedConstraints

from repro.core.configuration import Configuration
from repro.core.coordinate_descent import pair_grid_candidates
from repro.core.problem import CIMProblem
from repro.exceptions import SolverError
from repro.obs.context import get_metrics, get_tracer
from repro.rrset.estimator import HypergraphObjective
from repro.rrset.hypergraph import RRHypergraph
from repro.rrset.reference import ReferenceObjective
from repro.runtime.deadline import DeadlineLike, as_deadline
from repro.utils.timing import TimingBreakdown

__all__ = ["HypergraphCDResult", "coordinate_descent_hypergraph"]


@dataclass
class HypergraphCDResult:
    """Outcome of hyper-graph coordinate descent."""

    configuration: Configuration
    objective_value: float
    round_values: List[float] = field(default_factory=list)
    rounds_run: int = 0
    pair_updates: int = 0
    converged: bool = False
    #: True when a deadline stopped the descent early; the configuration
    #: is the feasible incumbent at that moment (never worse than the
    #: warm start — pair steps only ever improve the objective).
    deadline_expired: bool = False
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)


def _gradient_ordered_pairs(
    objective: HypergraphObjective,
    population,
    discounts: np.ndarray,
    coords: np.ndarray,
):
    """The paper's suggested pair heuristic (Section 5.2, left as future
    work there): pair coordinates with a *large* partial derivative of
    ``UI`` against coordinates with a *small* one.

    The true partial is ``dUI/dc_u = p_u'(c_u) * dUI/dq_u`` (chain rule on
    Eq. 6); both factors are cheap — the curve derivative is analytic and
    the objective slope is the incident-survival sum.
    """
    slopes = np.asarray(
        [objective.gradient_coordinate(int(u)) for u in coords], dtype=np.float64
    )
    curve_derivs = population.derivatives(discounts)[coords]
    scores = slopes * curve_derivs
    order = coords[np.argsort(-scores, kind="stable")]
    half = order.size // 2
    high, low = order[:half], order[half:][::-1]
    pairs = [(int(a), int(b)) for a, b in zip(high, low) if a != b]
    # Cover leftovers (odd counts) by pairing disjoint adjacent ranks — a
    # coordinate must not appear in two pairs of the same round, or the
    # second step re-optimizes a stale axis.
    paired = {node for pair in pairs for node in pair}
    rest = [int(u) for u in order if int(u) not in paired]
    pairs.extend(zip(rest[::2], rest[1::2]))
    return pairs


def coordinate_descent_hypergraph(
    problem: CIMProblem,
    hypergraph: RRHypergraph,
    initial: Configuration,
    grid_step: float = 0.01,
    max_rounds: int = 10,
    tolerance: float = 1e-9,
    coordinates: Optional[Sequence[int]] = None,
    refine_iterations: int = 25,
    pair_strategy: str = "cyclic",
    deadline: DeadlineLike = None,
    kernel: str = "vectorized",
    objective: Optional[HypergraphObjective] = None,
    constraints: Optional["ResolvedConstraints"] = None,
) -> HypergraphCDResult:
    """Run CD over the Eq.-14 hyper-graph objective.

    Parameters
    ----------
    initial:
        Warm-start configuration (typically the UD result).
    grid_step:
        Discount granularity of the pair line search (0.01 — the paper's
        "absolute error up to .01 ... at most we only need to try 101
        different values").
    coordinates:
        Coordinates eligible for pair selection; defaults to the non-zero
        support of ``initial`` (the paper's efficiency measure).
    refine_iterations:
        Golden-section refinement steps inside the best grid cell; 0
        disables refinement (grid-only, exactly the Section-7.1 trick).
    pair_strategy:
        ``"cyclic"`` — every pair, every round (the paper's experiment
        setting); ``"gradient"`` — the paper's future-work heuristic
        pairing large-derivative coordinates with small-derivative ones,
        visiting only O(|support|) pairs per round; ``"lazy"`` — CELF-style
        scheduling over the cyclic pair set: each pair carries a stale
        upper bound on its achievable gain (its last measured gain —
        pair steps are deterministic and round gains shrink monotonically,
        the Theorem-7 regime), pairs are visited in decreasing-bound
        order from a max-heap, bounds of pairs sharing a coordinate with
        an applied update are invalidated, and a round stops as soon as
        the best remaining bound falls below ``tolerance`` — skipping the
        long tail of pairs that cannot improve the incumbent.
    deadline:
        Optional run budget, polled at every pair boundary; on expiry the
        feasible incumbent is returned with ``deadline_expired=True``
        (anytime behaviour — the descent is a monotone improvement over
        the warm start, so stopping early is always safe).
    kernel:
        ``"vectorized"`` — the incrementally-maintained
        :class:`~repro.rrset.estimator.HypergraphObjective` (default);
        ``"reference"`` — the pre-vectorization
        :class:`~repro.rrset.reference.ReferenceObjective`, kept for
        bit-exact regression pinning and benchmark baselines.  Both
        kernels produce identical ``round_values`` and configurations.
    objective:
        Optional pre-built :class:`~repro.rrset.estimator.HypergraphObjective`
        over ``hypergraph`` to reuse instead of constructing a fresh one —
        the adaptive driver's warm start, which saves the O(members)
        survival rebuild between doubling stages.  Requires the
        ``"vectorized"`` kernel; its probabilities are reset to match
        ``initial`` unless they already do bit-for-bit.
    constraints:
        Optional resolved solver constraints.  Pair selection is restricted
        to coordinates with a positive cap, each pair line search is
        clamped to its feasible slice (``pair_caps``), and grid candidates
        violating generic constraint parts are masked out.  An infeasible
        warm start is projected onto the feasible set first.  ``None``
        (and trivial constraints, reduced upstream) runs the historical
        code path untouched.
    """
    budget_clock = as_deadline(deadline)
    initial.require_feasible(problem.budget)
    if len(initial) != problem.num_nodes:
        raise SolverError("initial configuration has the wrong length")
    if constraints is not None and not constraints.is_satisfied(initial.discounts):
        initial = Configuration(constraints.project(initial.discounts))
    if coordinates is None:
        coords = initial.support
    else:
        coords = np.unique(np.asarray(list(coordinates), dtype=np.int64))
        if coords.size and (coords[0] < 0 or coords[-1] >= problem.num_nodes):
            raise SolverError("coordinate index out of range")
    if constraints is not None and constraints.upper is not None:
        # A pair touching a zero-cap coordinate can never move it; capped
        # coordinates stay eligible (their slice is just shorter).
        coords = coords[constraints.upper[coords] > 0.0]

    if kernel not in ("vectorized", "reference"):
        raise SolverError(f"unknown objective kernel {kernel!r}")
    objective_cls = HypergraphObjective if kernel == "vectorized" else ReferenceObjective

    timings = TimingBreakdown()
    population = problem.population
    discounts = initial.discounts.copy()
    if objective is not None:
        if kernel != "vectorized":
            raise SolverError("a reusable objective requires the vectorized kernel")
        if objective.hypergraph is not hypergraph:
            raise SolverError(
                "the reusable objective is bound to a different hyper-graph"
            )
        wanted = population.probabilities(discounts)
        if not np.array_equal(objective.probabilities, wanted):
            objective.set_probabilities(wanted)
    else:
        objective = objective_cls(hypergraph, population.probabilities(discounts))
    current_value = objective.value()
    round_values = [current_value]

    metrics = get_metrics()
    tracer = get_tracer()
    if coords.size < 2:
        with tracer.span(
            "solver.cd", engine="hypergraph", coordinates=int(coords.size)
        ) as span:
            span.set(rounds_run=0, pair_updates=0, converged=True, truncated=False)
        metrics.inc("cd.runs_total")
        return HypergraphCDResult(
            configuration=Configuration(discounts),
            objective_value=current_value,
            round_values=round_values,
            converged=True,
            timings=timings,
        )

    if pair_strategy not in ("cyclic", "gradient", "lazy"):
        raise SolverError(f"unknown pair strategy {pair_strategy!r}")

    # The cyclic schedule is a pure function of the (immutable) coordinate
    # set — materialize it once instead of re-enumerating every round.
    # The lazy scheduler draws from the same pair universe, reordered.
    cyclic_pairs = (
        list(itertools.combinations(coords.tolist(), 2))
        if pair_strategy in ("cyclic", "lazy")
        else None
    )
    # Lazy state: per-pair stale gain upper bound.  +inf = never measured
    # (or invalidated by a neighbouring update), so round 1 visits every
    # pair in the heap's (bound, i, j) order — lexicographic, matching the
    # cyclic schedule exactly.
    lazy_bounds = (
        {pair: np.inf for pair in cyclic_pairs} if pair_strategy == "lazy" else None
    )

    pair_updates = 0
    rounds_run = 0
    converged = False
    expired = False
    polls = 0
    pair_evals = 0
    lazy_skips = 0

    def step_pair(i: int, j: int) -> float:
        """Grid + golden-section line search on the (c_i, c_j) pair.

        Returns the *measured potential gain* (best value on the segment
        minus the incumbent); applies the move only when it clears the
        tolerance.  This is the unit of work every strategy counts as one
        pair evaluation.
        """
        nonlocal current_value, pair_updates, pair_evals
        pair_evals += 1
        c_i, c_j = float(discounts[i]), float(discounts[j])
        if constraints is None:
            cap_i = cap_j = 1.0
            cand_i, cand_j, _ = pair_grid_candidates(c_i, c_j, grid_step)
        else:
            cap_i, cap_j = constraints.pair_caps(i, j)
            cand_i, cand_j, _ = pair_grid_candidates(
                c_i, c_j, grid_step, cap_i, cap_j
            )
            mask = constraints.pair_candidate_mask(discounts, i, j, cand_i, cand_j)
            if mask is not None and not mask.all():
                # The incumbent is feasible, so the mask never empties the
                # candidate set.
                cand_i, cand_j = cand_i[mask], cand_j[mask]
        coefficients = objective.pair_coefficients(i, j)
        curve_i, curve_j = population.curve(i), population.curve(j)
        q_i = np.asarray(curve_i(cand_i), dtype=np.float64)
        q_j = np.asarray(curve_j(cand_j), dtype=np.float64)
        values = coefficients.value_vectorized(q_i, q_j)
        best_index = int(np.argmax(values))
        best_c_i = float(cand_i[best_index])
        best_value = float(values[best_index])

        refinable = constraints is None or not constraints.has_generic
        if refine_iterations > 0 and cand_i.size > 2 and refinable:
            best_c_i, best_value = _golden_refine(
                coefficients,
                curve_i,
                curve_j,
                pair_budget=c_i + c_j,
                center=best_c_i,
                width=grid_step,
                iterations=refine_iterations,
                fallback=(best_c_i, best_value),
                cap_i=cap_i,
                cap_j=cap_j,
            )

        gain = best_value - current_value
        if gain > tolerance:
            best_c_j = (c_i + c_j) - best_c_i
            discounts[i] = best_c_i
            discounts[j] = best_c_j
            objective.set_probability(i, float(curve_i(best_c_i)))
            objective.set_probability(j, float(curve_j(best_c_j)))
            current_value = objective.value()
            pair_updates += 1
        return gain

    with tracer.span(
        "solver.cd",
        engine="hypergraph",
        coordinates=int(coords.size),
        max_rounds=max_rounds,
        pair_strategy=pair_strategy,
        kernel=kernel,
    ) as span, timings.phase("descent"):
        for _ in range(max_rounds):
            rounds_run += 1
            round_start_value = current_value
            if pair_strategy == "lazy":
                # Pairs in decreasing order of their stale gain bound; ties
                # (notably the initial all-+inf round) fall back to (i, j)
                # order, so round 1 replays the cyclic schedule exactly.
                heap = [(-lazy_bounds[pair], pair) for pair in cyclic_pairs]
                heapq.heapify(heap)
                while heap:
                    neg_bound, pair = heapq.heappop(heap)
                    if -neg_bound <= tolerance:
                        # Every remaining bound is no larger — the whole
                        # tail is certified unable to beat the tolerance.
                        lazy_skips += len(heap) + 1
                        break
                    polls += 1
                    if budget_clock.expired():
                        expired = True
                        break
                    i, j = pair
                    gain = step_pair(i, j)
                    lazy_bounds[pair] = gain
                    if gain > tolerance:
                        # The applied move changed c_i/c_j: any bound that
                        # was measured against the old values is void.
                        for other in cyclic_pairs:
                            if other is not pair and (i in other or j in other):
                                lazy_bounds[other] = np.inf
            else:
                if pair_strategy == "gradient":
                    round_pairs = _gradient_ordered_pairs(
                        objective, population, discounts, coords
                    )
                else:
                    round_pairs = cyclic_pairs
                for i, j in round_pairs:
                    polls += 1
                    if budget_clock.expired():
                        expired = True
                        break
                    step_pair(i, j)
            round_values.append(current_value)
            span.event(
                "round",
                index=rounds_run - 1,
                value=float(current_value),
                gain=float(current_value - round_start_value),
                pair_updates=pair_updates,
            )
            if expired:
                break
            if current_value - round_start_value <= tolerance:
                converged = True
                break
        # Wash out float drift accumulated by incremental survival updates.
        objective.rebuild()
        current_value = objective.value()
        span.set(
            rounds_run=rounds_run,
            pair_updates=pair_updates,
            pair_evals=pair_evals,
            converged=converged,
            truncated=expired,
            objective_value=float(current_value),
        )
        metrics.inc("cd.runs_total")
        metrics.inc("cd.rounds_total", rounds_run)
        metrics.inc("cd.pair_updates_total", pair_updates)
        metrics.inc("cd.pair_evals_total", pair_evals)
        metrics.inc("cd.deadline_polls_total", polls)
        if pair_strategy == "lazy":
            span.set(lazy_skips=lazy_skips)
            metrics.inc("cd.lazy_pair_skips_total", lazy_skips)
        if expired:
            metrics.inc("cd.deadline_expired_total")

    if constraints is not None:
        constraints.require_satisfied(discounts)
    return HypergraphCDResult(
        configuration=Configuration(discounts).require_feasible(problem.budget),
        objective_value=current_value,
        round_values=round_values,
        rounds_run=rounds_run,
        pair_updates=pair_updates,
        converged=converged,
        deadline_expired=expired,
        timings=timings,
    )


def _golden_refine(
    coefficients,
    curve_i,
    curve_j,
    pair_budget: float,
    center: float,
    width: float,
    iterations: int,
    fallback,
    cap_i: float = 1.0,
    cap_j: float = 1.0,
):
    """Golden-section maximization within one grid cell around ``center``.

    The restricted objective need not be unimodal globally, but within one
    grid cell of the best grid point a local search can only improve on the
    grid value (the fallback guards against pathological cells).  Per-user
    caps shrink the search bracket to the constrained feasible slice; the
    defaults reproduce the Eq.-7 interval.
    """
    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    lo = max(max(0.0, pair_budget - cap_j), center - width)
    hi = min(min(cap_i, pair_budget), center + width)
    if hi - lo < 1e-12:
        return fallback

    def value_at(c_i: float) -> float:
        q_i = float(curve_i(c_i))
        q_j = float(curve_j(pair_budget - c_i))
        return coefficients.value(q_i, q_j)

    a, b = lo, hi
    x1 = b - inv_phi * (b - a)
    x2 = a + inv_phi * (b - a)
    f1, f2 = value_at(x1), value_at(x2)
    for _ in range(iterations):
        if f1 < f2:
            a, x1, f1 = x1, x2, f2
            x2 = a + inv_phi * (b - a)
            f2 = value_at(x2)
        else:
            b, x2, f2 = x2, x1, f1
            x1 = b - inv_phi * (b - a)
            f1 = value_at(x1)
    best_c = x1 if f1 >= f2 else x2
    best_value = max(f1, f2)
    if best_value > fallback[1]:
        return float(best_c), float(best_value)
    return fallback
