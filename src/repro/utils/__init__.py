"""Shared utilities: RNG plumbing, timing, streaming statistics."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.stats import RunningStat, mean_confidence_interval
from repro.utils.timing import Stopwatch, TimingBreakdown

__all__ = [
    "as_generator",
    "spawn_generators",
    "RunningStat",
    "mean_confidence_interval",
    "Stopwatch",
    "TimingBreakdown",
]
