"""Random-number-generator plumbing.

Every stochastic routine in the library accepts a ``seed`` argument that may
be ``None`` (fresh OS entropy), an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes all three
forms, which keeps experiment code deterministic without threading generator
objects through every call site.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["SeedLike", "as_generator", "spawn_generators"]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Passing an existing generator returns it unchanged (no re-seeding), so a
    caller can share one stream across several routines.

    >>> g = as_generator(42)
    >>> as_generator(g) is g
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used by experiment runners to give each repetition / worker its own
    stream while staying reproducible from a single root seed.

    >>> a, b = spawn_generators(7, 2)
    >>> a is b
    False
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = as_generator(seed)
    seeds = root.integers(0, 2**63, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
