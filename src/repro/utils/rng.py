"""Random-number-generator plumbing.

Every stochastic routine in the library accepts a ``seed`` argument that may
be ``None`` (fresh OS entropy), an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes all three
forms, which keeps experiment code deterministic without threading generator
objects through every call site.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "SeedLike",
    "as_generator",
    "as_root_sequence",
    "child_sequences",
    "spawn_generators",
    "spawn_sequences",
]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Passing an existing generator returns it unchanged (no re-seeding), so a
    caller can share one stream across several routines.

    >>> g = as_generator(42)
    >>> as_generator(g) is g
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used by experiment runners to give each repetition / worker its own
    stream while staying reproducible from a single root seed.

    >>> a, b = spawn_generators(7, 2)
    >>> a is b
    False
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = as_generator(seed)
    seeds = root.integers(0, 2**63, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def as_root_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Normalize any accepted seed form to a root :class:`~numpy.random.SeedSequence`.

    The returned sequence is the stable ancestor of every chunk stream:
    numpy identifies children by their spawn index, so child ``i`` of a
    root is the same regardless of how many siblings are ever spawned —
    the property that lets an adaptive sampler extend a hyper-graph in
    instalments and still match a one-shot build bit for bit.

    A live :class:`~numpy.random.Generator` contributes exactly one draw
    (so calling this twice on the same generator yields *different*
    roots); normalize once and reuse the result when a stable plan is
    needed.  ``None`` means fresh OS entropy.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.SeedSequence(None if seed is None else int(seed))
    return np.random.SeedSequence(int(as_generator(seed).integers(0, 2**63)))


def spawn_sequences(seed: SeedLike, count: int) -> list[np.random.SeedSequence]:
    """Derive ``count`` independent child :class:`~numpy.random.SeedSequence`\\ s.

    This is the partitioning primitive of the parallel engine
    (:mod:`repro.parallel`): work is pre-split into fixed chunks and chunk
    ``i`` always receives child ``i``, so the drawn streams depend only on
    the root seed and the chunk layout — never on how many workers execute
    them.  Child sequences are small and picklable, so they travel to
    worker processes cheaply.

    A live :class:`~numpy.random.Generator` cannot be split directly; it
    contributes exactly one draw, which becomes the root entropy.  ``None``
    means fresh OS entropy (non-reproducible, like everywhere else).

    >>> a1, b1 = spawn_sequences(7, 2)
    >>> a2, b2 = spawn_sequences(7, 2)
    >>> a1.generate_state(2).tolist() == a2.generate_state(2).tolist()
    True
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return child_sequences(seed, 0, count)


def child_sequences(
    seed: SeedLike, start: int, count: int
) -> list[np.random.SeedSequence]:
    """Children ``start .. start+count-1`` of the root, constructed statelessly.

    ``SeedSequence.spawn`` is stateful (each call advances the spawn
    counter); this builds the same children it would — child ``i`` is
    ``SeedSequence(entropy, spawn_key=root.spawn_key + (i,))`` — without
    mutating the root, so chunk ``i`` of a sampling plan receives the same
    stream whether sampled in one shot or across several extension calls.

    >>> [c.spawn_key for c in child_sequences(7, 2, 2)]
    [(2,), (3,)]
    >>> a = child_sequences(7, 1, 1)[0]
    >>> b = spawn_sequences(7, 2)[1]
    >>> a.generate_state(2).tolist() == b.generate_state(2).tolist()
    True
    """
    if start < 0:
        raise ValueError(f"start must be non-negative, got {start}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = as_root_sequence(seed)
    base = tuple(root.spawn_key)
    return [
        np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=base + (index,),
            pool_size=root.pool_size,
        )
        for index in range(start, start + count)
    ]
