"""Lightweight timing helpers for the experiment harness.

The paper's Figure 6 decomposes solver running time into "hypergraph build"
and "everything else"; :class:`TimingBreakdown` records named phases so the
benchmark harness can report the same decomposition.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["Stopwatch", "TimingBreakdown"]


class Stopwatch:
    """A restartable wall-clock stopwatch.

    ``stop()`` is idempotent: stopping a never-started or already-stopped
    watch simply returns the accumulated total.  Deadline-polling code
    winds watches down on *every* exit path (normal, partial, injected
    fault), so a double stop must be harmless, never a crash.

    >>> sw = Stopwatch()
    >>> sw.running
    False
    >>> sw.start()
    >>> sw.running
    True
    >>> _ = sum(range(100))
    >>> sw.stop() >= 0.0
    True
    >>> sw.stop() == sw.elapsed  # idempotent: second stop is a no-op
    True
    >>> Stopwatch().stop()  # never started: nothing accumulated
    0.0
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    @property
    def running(self) -> bool:
        """Whether the watch is currently accumulating time.

        >>> sw = Stopwatch()
        >>> sw.start(); sw.running
        True
        >>> _ = sw.stop(); sw.running
        False
        """
        return self._start is not None

    def start(self) -> None:
        """Begin (or resume) timing."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop timing and return the total elapsed seconds so far.

        Idempotent: a no-op (returning the current total) when the watch
        is not running.
        """
        if self._start is not None:
            self.elapsed += time.perf_counter() - self._start
            self._start = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time."""
        self._start = None
        self.elapsed = 0.0


@dataclass
class TimingBreakdown:
    """Accumulates named timing phases for a solver run."""

    phases: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager adding the block's wall time to phase ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phases[name] = self.phases.get(name, 0.0) + time.perf_counter() - start

    @property
    def total(self) -> float:
        """Sum of all recorded phases, in seconds."""
        return sum(self.phases.values())

    def merge(self, other: "TimingBreakdown") -> "TimingBreakdown":
        """Return a new breakdown combining this one with ``other``."""
        merged = TimingBreakdown(dict(self.phases))
        for name, seconds in other.phases.items():
            merged.phases[name] = merged.phases.get(name, 0.0) + seconds
        return merged

    def as_millis(self) -> Dict[str, float]:
        """Phases converted to milliseconds (the unit used in Figure 6)."""
        return {name: seconds * 1000.0 for name, seconds in self.phases.items()}
