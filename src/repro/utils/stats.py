"""Streaming statistics used by the Monte-Carlo estimators.

:class:`RunningStat` implements Welford's single-pass algorithm so spread
estimators can report mean, variance and confidence intervals without
retaining every sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Tuple

import numpy as np

__all__ = ["RunningStat", "mean_confidence_interval"]


@dataclass
class RunningStat:
    """Welford single-pass mean/variance accumulator.

    >>> s = RunningStat()
    >>> for x in (1.0, 2.0, 3.0):
    ...     s.add(x)
    >>> s.mean
    2.0
    >>> round(s.variance, 6)
    1.0
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def add_many(self, values: Iterable[float]) -> None:
        """Fold a batch of observations into the accumulator."""
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
        if arr.size == 0:
            return
        # Chan et al. parallel-merge update of Welford state.
        batch_count = int(arr.size)
        batch_mean = float(arr.mean())
        batch_m2 = float(((arr - batch_mean) ** 2).sum())
        delta = batch_mean - self.mean
        total = self.count + batch_count
        self._m2 += batch_m2 + delta * delta * self.count * batch_count / total
        self.mean += delta * batch_count / total
        self.count = total

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 until two observations exist)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count == 0:
            return float("inf")
        return self.stddev / math.sqrt(self.count)

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation confidence interval for the mean."""
        half = z * self.stderr
        return (self.mean - half, self.mean + half)


def mean_confidence_interval(samples: np.ndarray, z: float = 1.96) -> Tuple[float, float, float]:
    """Return ``(mean, lo, hi)`` for a batch of samples.

    Convenience wrapper around :class:`RunningStat` for code that already
    holds all samples in memory.
    """
    stat = RunningStat()
    stat.add_many(np.asarray(samples, dtype=float))
    lo, hi = stat.confidence_interval(z)
    return stat.mean, lo, hi
