"""Streaming statistics used by the Monte-Carlo estimators.

:class:`RunningStat` implements Welford's single-pass algorithm so spread
estimators can report mean, variance and confidence intervals without
retaining every sample.  Batches fold in via the Chan et al. parallel
update (:meth:`RunningStat.add_many`), and two accumulators combine with
:meth:`RunningStat.merge` — the reduction step of the parallel engine,
which merges per-chunk statistics in a fixed chunk order so the result is
bit-identical regardless of how many workers produced them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Tuple

import numpy as np

from repro.exceptions import EstimationError

__all__ = ["RunningStat", "mean_confidence_interval"]


@dataclass
class RunningStat:
    """Welford single-pass mean/variance accumulator.

    >>> s = RunningStat()
    >>> for x in (1.0, 2.0, 3.0):
    ...     s.add(x)
    >>> s.mean
    2.0
    >>> round(s.variance, 6)
    1.0
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator.

        Non-finite observations are rejected: a single ``NaN`` would
        silently poison the mean and every confidence interval derived
        from it.
        """
        value = float(value)
        if not math.isfinite(value):
            raise EstimationError(f"samples must be finite, got {value}")
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def add_many(self, values: Iterable[float]) -> None:
        """Fold a batch of observations into the accumulator.

        Accepts arrays, sequences and generators (consumed lazily via
        ``np.fromiter`` — no intermediate list).  Raises
        :class:`~repro.exceptions.EstimationError` if any sample is
        ``NaN``/``inf``.
        """
        if isinstance(values, np.ndarray):
            arr = np.asarray(values, dtype=np.float64)
        else:
            arr = np.fromiter(values, dtype=np.float64)
        if arr.size == 0:
            return
        if not np.all(np.isfinite(arr)):
            bad = int(np.flatnonzero(~np.isfinite(arr))[0])
            raise EstimationError(
                f"samples must be finite, got {arr.flat[bad]} at index {bad}"
            )
        # Chan et al. parallel-merge update of Welford state.
        batch_count = int(arr.size)
        batch_mean = float(arr.mean())
        batch_m2 = float(((arr - batch_mean) ** 2).sum())
        delta = batch_mean - self.mean
        total = self.count + batch_count
        self._m2 += batch_m2 + delta * delta * self.count * batch_count / total
        self.mean += delta * batch_count / total
        self.count = total

    def merge(self, other: "RunningStat") -> None:
        """Fold another accumulator into this one (Chan et al. merge).

        The parallel engine's reduction: workers return one
        :class:`RunningStat` per chunk and the coordinator merges them in
        chunk order, which makes the combined mean/variance independent of
        the worker count.  ``other`` is left untouched.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self._m2 = other.count, other.mean, other._m2
            return
        delta = other.mean - self.mean
        total = self.count + other.count
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``nan`` until two observations exist).

        A single observation carries no dispersion information; reporting
        0.0 (as earlier versions did) produced misleading zero-width
        confidence intervals downstream.
        """
        if self.count < 2:
            return float("nan")
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation (``nan`` until two observations)."""
        return math.sqrt(self.variance) if self.count >= 2 else float("nan")

    @property
    def stderr(self) -> float:
        """Standard error of the mean.

        ``inf`` with no observations (any mean is possible), ``nan`` with
        one (dispersion unknown).
        """
        if self.count == 0:
            return float("inf")
        return self.stddev / math.sqrt(self.count)

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation confidence interval for the mean."""
        half = z * self.stderr
        return (self.mean - half, self.mean + half)


def mean_confidence_interval(samples: np.ndarray, z: float = 1.96) -> Tuple[float, float, float]:
    """Return ``(mean, lo, hi)`` for a batch of samples.

    Convenience wrapper around :class:`RunningStat` for code that already
    holds all samples in memory.
    """
    stat = RunningStat()
    stat.add_many(np.asarray(samples, dtype=float))
    lo, hi = stat.confidence_interval(z)
    return stat.mean, lo, hi
