"""File-backed spill arrays: the out-of-core destination machinery.

Everything at com-LiveJournal scale that used to live in anonymous heap
memory — the generator's stub stream, CSR targets/probabilities, the
hyper-graph member stream — can instead land in a ``np.memmap`` over a
file in a *spill directory*.  File-backed pages are reclaimable page
cache rather than anonymous RSS, so the coordinator's peak memory stops
tracking graph and hyper-graph size (see ``docs/performance.md``,
"Out-of-core assembly").

Three concerns live here:

* **Backing resolution.**  ``backing="heap"`` (the default everywhere)
  keeps the classic ``np.empty`` destinations; ``backing="mmap"``
  allocates :func:`spill_array` destinations.  Both produce bit-identical
  array *contents* — backing is a placement decision, never a results
  decision.
* **Spill lifetime.**  Spill files are created under a per-process
  session directory (removed at interpreter exit) and additionally
  unlinked by a ``weakref`` finalizer as soon as the last array view
  dies, so long-running processes do not accumulate dead spill files.
  The spill root resolves ``spill_dir`` argument > ``REPRO_SPILL_DIR`` >
  the system temp dir — deliberately *not* ``/dev/shm`` (the slab-store
  default): slabs exist for zero-copy transport and want tmpfs, spills
  exist to relieve memory and want a disk.
* **Zero-copy pickling.**  A spill-backed array crossing the worker-pool
  boundary must not be rehydrated into a multi-GB pickle byte stream
  (numpy pickles ``np.memmap`` by value).  :func:`pack_array` turns a
  live file-backed memmap into a tiny ``(path, dtype, shape, offset)``
  receipt and :func:`unpack_array` reopens it read-only in the worker,
  so pool initializer payloads stay O(bytes) regardless of graph size.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
import weakref
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import StorageError

__all__ = [
    "BACKING_MODES",
    "SPILL_DIR_ENV_VAR",
    "resolve_backing",
    "resolve_spill_root",
    "spill_array",
    "empty_array",
    "release_pages",
    "is_spill_backed",
    "pack_array",
    "unpack_array",
    "peak_rss_mb",
]

#: ``--backing`` values accepted across the library.
BACKING_MODES = ("heap", "mmap")

#: Environment variable overriding where spill files are created.
SPILL_DIR_ENV_VAR = "REPRO_SPILL_DIR"


def resolve_backing(backing: Optional[str]) -> str:
    """Normalize/validate a ``backing`` argument (``None`` means heap)."""
    mode = "heap" if backing is None else str(backing)
    if mode not in BACKING_MODES:
        raise StorageError(
            f"backing must be one of {BACKING_MODES}, got {backing!r}"
        )
    return mode


def resolve_spill_root(spill_dir: Union[str, Path, None] = None) -> Path:
    """Where spill files live: arg > ``REPRO_SPILL_DIR`` > system temp.

    Mirrors the slab store's resolution order (arg > env > fallback) but
    falls back to a *disk* temp dir, never ``/dev/shm``: a spill that
    lands on tmpfs would consume the exact memory it exists to save.
    """
    if spill_dir is not None:
        return Path(spill_dir)
    env = os.environ.get(SPILL_DIR_ENV_VAR, "").strip()
    if env:
        return Path(env)
    return Path(tempfile.gettempdir())


# Per-(process, root) spill session directories, removed at interpreter
# exit.  Individual files are also unlinked early by array finalizers;
# the directory sweep catches anything a hard kill left behind in *this*
# process's lifetime (a SIGKILL leaks the directory — it is prefixed
# ``repro-spill-`` so stale ones are recognizable).
_SESSION_DIRS: dict = {}
_SPILL_COUNTER = [0]


def _session_dir(root: Path) -> Path:
    key = str(root)
    session = _SESSION_DIRS.get(key)
    if session is None or not os.path.isdir(session):
        root.mkdir(parents=True, exist_ok=True)
        session = tempfile.mkdtemp(prefix=f"repro-spill-{os.getpid()}-", dir=root)
        _SESSION_DIRS[key] = session
        atexit.register(shutil.rmtree, session, ignore_errors=True)
    return Path(session)


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def spill_array(
    shape: Union[int, Sequence[int]],
    dtype: Union[str, np.dtype],
    spill_dir: Union[str, Path, None] = None,
    name_hint: str = "a",
) -> np.ndarray:
    """Allocate a writable file-backed array in the spill directory.

    The backing file is sized with ``ftruncate`` (sparse — blocks
    materialize only as pages are written) and unlinked automatically
    when the array is garbage collected.  Contents start zeroed, like
    ``np.zeros`` — callers that relied on ``np.empty``'s garbage must
    still overwrite every element, which they do by contract.
    """
    dtype = np.dtype(dtype)
    shape_tuple: Tuple[int, ...] = (
        (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
    )
    nbytes = int(np.prod(shape_tuple, dtype=np.int64)) * dtype.itemsize
    if nbytes == 0:
        # mmap cannot map zero bytes; a 0-length heap array is free anyway.
        return np.empty(shape_tuple, dtype=dtype)
    session = _session_dir(resolve_spill_root(spill_dir))
    _SPILL_COUNTER[0] += 1
    path = session / f"{_SPILL_COUNTER[0]:06d}-{name_hint}.bin"
    try:
        with open(path, "wb") as handle:
            if nbytes:
                os.ftruncate(handle.fileno(), nbytes)
        array = np.memmap(path, dtype=dtype, mode="r+", shape=shape_tuple)
    except OSError as exc:
        raise StorageError(f"cannot create spill file {path}: {exc}") from exc
    weakref.finalize(array, _unlink_quietly, str(path))
    from repro.obs.context import get_metrics

    get_metrics().inc("storage.spill_bytes_total", nbytes)
    get_metrics().inc("storage.spill_arrays_total")
    return array


def empty_array(
    shape: Union[int, Sequence[int]],
    dtype: Union[str, np.dtype],
    backing: Optional[str] = None,
    spill_dir: Union[str, Path, None] = None,
    name_hint: str = "a",
) -> np.ndarray:
    """``np.empty`` or :func:`spill_array`, per the resolved backing."""
    if resolve_backing(backing) == "mmap":
        return spill_array(shape, dtype, spill_dir=spill_dir, name_hint=name_hint)
    return np.empty(shape, dtype=np.dtype(dtype))


def release_pages(array: np.ndarray) -> None:
    """Best-effort: drop a spill array's resident pages from this process.

    For a shared file-backed mapping ``MADV_DONTNEED`` only zaps the page
    table entries — the page cache (dirty pages included) still belongs
    to the file, so contents survive and later accesses fault the pages
    back in.  Calling this after a sequential pass keeps peak RSS at the
    pass's working set instead of the whole array.  No-op for heap
    arrays and on platforms without ``madvise``.
    """
    base = getattr(array, "base", None)
    import mmap as _mmap

    target = base if isinstance(base, _mmap.mmap) else None
    if target is None or not hasattr(target, "madvise"):
        return
    try:
        target.madvise(_mmap.MADV_DONTNEED)
    except (OSError, ValueError):  # pragma: no cover - platform-specific
        pass


def is_spill_backed(array: np.ndarray) -> bool:
    """True when ``array`` is (a view of) a file-backed ``np.memmap``."""
    while isinstance(array, np.ndarray):
        if isinstance(array, np.memmap):
            return True
        array = array.base
    return False


def _mapped_base(array: np.ndarray) -> Optional[np.memmap]:
    """The original (non-view) memmap behind ``array``, if it is one."""
    if not isinstance(array, np.memmap):
        return None
    if isinstance(array.base, np.ndarray):
        # A view: np.memmap does not maintain .offset/.filename for
        # views, so a by-reference pickle of one would be wrong.
        return None
    return array


def pack_array(array):
    """Pickle-friendly form of an array: by reference when file-backed.

    A live, whole-file, C-contiguous memmap becomes a
    ``("spill-mmap", path, dtype, shape, offset)`` receipt; everything
    else (heap arrays, views, scalars) passes through untouched and
    pickles by value as usual.
    """
    if not isinstance(array, np.ndarray):
        return array
    base = _mapped_base(array)
    if (
        base is None
        or not base.flags["C_CONTIGUOUS"]
        or not base.filename
        or not os.path.exists(base.filename)
    ):
        return array
    return (
        "spill-mmap",
        str(base.filename),
        base.dtype.str,
        tuple(int(s) for s in base.shape),
        int(base.offset),
    )


def unpack_array(packed):
    """Inverse of :func:`pack_array`; reopens receipts read-only."""
    if (
        isinstance(packed, tuple)
        and len(packed) == 5
        and packed[0] == "spill-mmap"
    ):
        _tag, path, dtype, shape, offset = packed
        try:
            return np.memmap(
                path, dtype=np.dtype(dtype), mode="r", shape=shape, offset=offset
            )
        except (OSError, ValueError) as exc:
            raise StorageError(
                f"cannot reopen spill-backed array {path}: {exc}"
            ) from exc
    return packed


def peak_rss_mb() -> Optional[float]:
    """Peak RSS of this process and its pool workers, in MiB."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    import sys

    peak = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0
