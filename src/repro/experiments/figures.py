"""Regeneration of the paper's figures (data series, printed as tables).

Each function returns the rows/series the corresponding figure plots and
optionally pretty-prints them; benchmarks call these with reduced scales.

* Figure 3 — influence spread of IM / UD / CD vs budget, per (dataset, α).
* Figure 4 — approximation lower bound of the IM baseline vs budget.
* Figure 5 — UD spread vs the unified discount ``c`` (α = 1, B = 50).
* Figure 6 — running time of IM / UD / CD plus the hyper-graph build share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.problem import CIMProblem
from repro.core.solvers import solve
from repro.core.unified_discount import unified_discount
from repro.experiments.runner import ExperimentResult, build_problem, run_methods
from repro.rrset.hypergraph import RRHypergraph
from repro.rrset.sample_size import approximation_lower_bound
from repro.utils.rng import SeedLike, spawn_generators

__all__ = [
    "Figure3Row",
    "figure3_influence_spread",
    "figure4_approximation_bound",
    "figure5_spread_vs_discount",
    "figure6_running_time",
]

_FIG3_METHODS = ("im", "ud", "cd")


@dataclass(frozen=True)
class Figure3Row:
    """One point of a Figure-3 panel: (dataset, alpha, budget, method)."""

    dataset: str
    alpha: float
    budget: float
    method: str
    spread_mean: float
    spread_std: float
    hypergraph_ms: float
    method_ms: float


def _shared_hypergraph(problem: CIMProblem, num_hyperedges: Optional[int], seed) -> RRHypergraph:
    return problem.build_hypergraph(num_hyperedges=num_hyperedges, seed=seed)


def figure3_influence_spread(
    dataset: str = "wiki-vote",
    alpha: float = 1.0,
    budgets: Sequence[float] = (10, 20, 30, 40, 50),
    scale: float = 0.02,
    num_hyperedges: Optional[int] = None,
    evaluation_samples: int = 2000,
    seed: SeedLike = 2016,
    verbose: bool = False,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    workers: Optional[int] = None,
    supervision=None,
) -> List[Figure3Row]:
    """One panel of Figure 3: spread of IM / UD / CD as budget grows.

    ``checkpoint_dir`` / ``resume`` / ``workers`` / ``supervision`` forward to
    :func:`~repro.experiments.runner.run_methods`: each (budget, method)
    cell is snapshotted, so a killed panel resumes where it stopped.
    """
    rows: List[Figure3Row] = []
    for budget in budgets:
        problem = build_problem(dataset, budget=budget, alpha=alpha, scale=scale, seed=seed)
        results = run_methods(
            problem,
            _FIG3_METHODS,
            num_hyperedges=num_hyperedges,
            evaluation_samples=evaluation_samples,
            seed=seed,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            workers=workers,
            supervision=supervision,
        )
        for result in results:
            rows.append(
                Figure3Row(
                    dataset=dataset,
                    alpha=alpha,
                    budget=budget,
                    method=result.method,
                    spread_mean=result.spread_mean,
                    spread_std=result.spread_std,
                    hypergraph_ms=result.hypergraph_ms,
                    method_ms=result.method_ms,
                )
            )
    if verbose:
        print(f"Figure 3 panel — {dataset}, alpha={alpha}")
        print(f"{'B':>6s} " + " ".join(f"{m:>16s}" for m in _FIG3_METHODS))
        for budget in budgets:
            cells = []
            for method in _FIG3_METHODS:
                row = next(
                    r for r in rows if r.budget == budget and r.method == method
                )
                cells.append(f"{row.spread_mean:9.1f}±{row.spread_std:6.1f}")
            print(f"{budget:6.0f} " + " ".join(cells))
    return rows


def figure4_approximation_bound(
    dataset: str = "wiki-vote",
    alpha: float = 1.0,
    budgets: Sequence[int] = (10, 20, 30, 40, 50),
    scale: float = 0.02,
    num_hyperedges: Optional[int] = None,
    seed: SeedLike = 2016,
    verbose: bool = False,
) -> Dict[int, float]:
    """Figure 4: the ``1 - 1/e - eps`` bound of the IM baseline vs budget.

    Uses the spread of the IM seed set (hyper-graph estimate) as the OPT
    lower bound, exactly as the paper describes.
    """
    bounds: Dict[int, float] = {}
    for budget in budgets:
        problem = build_problem(dataset, budget=budget, alpha=alpha, scale=scale, seed=seed)
        result = solve(problem, "im", num_hyperedges=num_hyperedges, seed=seed)
        theta = int(result.extras["num_hyperedges"])
        bounds[int(budget)] = approximation_lower_bound(
            problem.num_nodes, int(budget), theta, result.spread_estimate
        )
    if verbose:
        print(f"Figure 4 — {dataset}, alpha={alpha}")
        for budget, bound in bounds.items():
            print(f"  B={budget:3d}  approximation lower bound = {bound:.3f}")
    return bounds


def figure5_spread_vs_discount(
    dataset: str = "wiki-vote",
    alpha: float = 1.0,
    budget: float = 50,
    scale: float = 0.02,
    step: float = 0.05,
    num_hyperedges: Optional[int] = None,
    seed: SeedLike = 2016,
    verbose: bool = False,
) -> List[Dict[str, float]]:
    """Figure 5: UD spread at every unified discount on the grid."""
    problem = build_problem(dataset, budget=budget, alpha=alpha, scale=scale, seed=seed)
    hypergraph_rng, _ = spawn_generators(seed, 2)
    hypergraph = _shared_hypergraph(problem, num_hyperedges, hypergraph_rng)
    result = unified_discount(problem, hypergraph, step=step)
    rows = [
        {
            "discount": point.discount,
            "num_targets": point.num_targets,
            "spread": point.spread_estimate,
        }
        for point in result.grid
    ]
    if verbose:
        print(f"Figure 5 — {dataset}, alpha={alpha}, B={budget}")
        for row in rows:
            print(
                f"  c={row['discount']:5.0%}  k={row['num_targets']:5.0f}  "
                f"spread={row['spread']:9.1f}"
            )
        print(f"  best c = {result.best_discount:.0%}")
    return rows


def figure6_running_time(
    dataset: str = "wiki-vote",
    alpha: float = 1.0,
    budgets: Sequence[float] = (10, 20, 30, 40, 50),
    scale: float = 0.02,
    num_hyperedges: Optional[int] = None,
    seed: SeedLike = 2016,
    verbose: bool = False,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    workers: Optional[int] = None,
    supervision=None,
) -> List[Dict[str, float]]:
    """Figure 6: per-method running time and the hyper-graph build share."""
    rows: List[Dict[str, float]] = []
    for budget in budgets:
        problem = build_problem(dataset, budget=budget, alpha=alpha, scale=scale, seed=seed)
        results = run_methods(
            problem,
            _FIG3_METHODS,
            num_hyperedges=num_hyperedges,
            evaluation_samples=1,  # Figure 6 measures solver time, not spread
            seed=seed,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            workers=workers,
            supervision=supervision,
        )
        for result in results:
            rows.append(
                {
                    "budget": float(budget),
                    "method": result.method,
                    "hypergraph_ms": result.hypergraph_ms,
                    "method_ms": result.method_ms,
                    "total_ms": result.total_ms,
                }
            )
    if verbose:
        print(f"Figure 6 — {dataset}, alpha={alpha} (times in ms)")
        for row in rows:
            print(
                f"  B={row['budget']:5.0f} {row['method']:>4s} "
                f"build={row['hypergraph_ms']:9.1f} solve={row['method_ms']:9.1f} "
                f"total={row['total_ms']:9.1f}"
            )
    return rows
