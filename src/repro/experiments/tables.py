"""Regeneration of the paper's tables 3 and 4.

* Table 3 — effect of the UD search step (1% vs 5%): the best unified
  discount found with each grid, its spread, and the reduction percentage.
* Table 4 — sensitivity to the purchase-probability curve mixture: spread
  of UD and CD as the sensitive-user share drops 85% → 75% → 65%.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.solvers import solve
from repro.core.unified_discount import unified_discount
from repro.experiments.runner import build_problem
from repro.utils.rng import SeedLike, spawn_generators

__all__ = ["table3_search_step", "table4_sensitivity"]

# The Table-4 population mixtures: (sensitive, linear, insensitive).
TABLE4_MIXTURES: Tuple[Tuple[float, float, float], ...] = (
    (0.85, 0.10, 0.05),
    (0.75, 0.15, 0.10),
    (0.65, 0.20, 0.15),
)


def table3_search_step(
    dataset: str = "wiki-vote",
    budgets: Sequence[float] = (10, 20, 30, 40, 50),
    alpha: float = 1.0,
    scale: float = 0.02,
    num_hyperedges: Optional[int] = None,
    seed: SeedLike = 2016,
    verbose: bool = False,
) -> List[Dict[str, float]]:
    """Table 3: UD spread with 1% vs 5% search step, and the reduction %.

    The paper's conclusion — the 5% grid loses only a tiny fraction — is a
    structural property of the smooth spread-vs-discount curve (Figure 5),
    so it carries over to the analogue networks.
    """
    rows: List[Dict[str, float]] = []
    for budget in budgets:
        problem = build_problem(dataset, budget=budget, alpha=alpha, scale=scale, seed=seed)
        hypergraph_rng, _ = spawn_generators(seed, 2)
        hypergraph = problem.build_hypergraph(num_hyperedges=num_hyperedges, seed=hypergraph_rng)
        fine = unified_discount(problem, hypergraph, step=0.01)
        coarse = unified_discount(problem, hypergraph, step=0.05)
        reduction = (
            (fine.spread_estimate - coarse.spread_estimate) / fine.spread_estimate * 100.0
            if fine.spread_estimate > 0
            else 0.0
        )
        rows.append(
            {
                "budget": float(budget),
                "spread_step_1pct": fine.spread_estimate,
                "spread_step_5pct": coarse.spread_estimate,
                "reduction_pct": reduction,
                "best_c_1pct": fine.best_discount,
                "best_c_5pct": coarse.best_discount,
            }
        )
    if verbose:
        print(f"Table 3 — {dataset}, alpha={alpha}")
        print(f"{'B':>6s} {'1% step':>12s} {'5% step':>12s} {'reduction':>10s}")
        for row in rows:
            print(
                f"{row['budget']:6.0f} {row['spread_step_1pct']:12.1f} "
                f"{row['spread_step_5pct']:12.1f} {row['reduction_pct']:9.3f}%"
            )
    return rows


def table4_sensitivity(
    dataset: str = "wiki-vote",
    budget: float = 50,
    alpha: float = 1.0,
    scale: float = 0.02,
    num_hyperedges: Optional[int] = None,
    mixtures: Sequence[Tuple[float, float, float]] = TABLE4_MIXTURES,
    methods: Sequence[str] = ("ud", "cd"),
    seed: SeedLike = 2016,
    verbose: bool = False,
) -> List[Dict[str, object]]:
    """Table 4: spread as the sensitive-user fraction shrinks.

    Each mixture re-randomizes the curve assignment (as the paper does),
    so spreads can occasionally *increase* when influential users happen to
    draw sensitive curves — the paper observes the same artifact.
    """
    rows: List[Dict[str, object]] = []
    for sensitive, linear, insensitive in mixtures:
        problem = build_problem(
            dataset,
            budget=budget,
            alpha=alpha,
            scale=scale,
            sensitive_fraction=sensitive,
            linear_fraction=linear,
            insensitive_fraction=insensitive,
            seed=seed,
        )
        hypergraph_rng, solver_rng = spawn_generators(seed, 2)
        hypergraph = problem.build_hypergraph(num_hyperedges=num_hyperedges, seed=hypergraph_rng)
        row: Dict[str, object] = {
            "sensitive_pct": sensitive * 100,
            "linear_pct": linear * 100,
            "insensitive_pct": insensitive * 100,
        }
        for method in methods:
            result = solve(problem, method, hypergraph=hypergraph, seed=solver_rng)
            row[f"{method}_spread"] = result.spread_estimate
        rows.append(row)
    if verbose:
        print(f"Table 4 — {dataset}, alpha={alpha}, B={budget}")
        for row in rows:
            cells = " ".join(
                f"{m}={row[f'{m}_spread']:9.1f}" for m in methods
            )
            print(
                f"  sensitive={row['sensitive_pct']:4.0f}% "
                f"linear={row['linear_pct']:4.0f}% "
                f"insensitive={row['insensitive_pct']:4.0f}%  {cells}"
            )
    return rows
