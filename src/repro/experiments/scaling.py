"""Scaling study: running-time decomposition vs network size.

Figure 6's cross-dataset message is a *trend*: as networks grow, the
hyper-graph construction (O(theta * avg RR size), theta = O(n log n))
dominates total running time, so the overhead of UD / CD relative to
discrete IM shrinks — from ~10x on wiki-Vote down to ~1.5x on
com-LiveJournal.  The paper shows four data points (its datasets); this
harness sweeps the analogue generator across scales and measures the same
decomposition on a regular grid.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.cd_hypergraph import coordinate_descent_hypergraph
from repro.core.population import paper_mixture
from repro.core.problem import CIMProblem
from repro.core.unified_discount import unified_discount
from repro.diffusion.independent_cascade import IndependentCascade
from repro.experiments.datasets import load_dataset
from repro.rrset.coverage import max_coverage
from repro.utils.rng import SeedLike

__all__ = ["ScalingRow", "scaling_study"]


@dataclass(frozen=True)
class ScalingRow:
    """Timing decomposition at one network scale (milliseconds)."""

    scale: float
    num_nodes: int
    num_edges: int
    theta: int
    build_ms: float
    im_ms: float
    ud_ms: float
    cd_ms: float

    @property
    def cd_total_ms(self) -> float:
        """CD's end-to-end cost: hyper-graph build + UD warm start + CD."""
        return self.build_ms + self.ud_ms + self.cd_ms

    @property
    def im_total_ms(self) -> float:
        """IM's end-to-end cost: hyper-graph build + selection."""
        return self.build_ms + self.im_ms

    @property
    def cd_over_im(self) -> float:
        """The Figure-6 ratio: CD total time / IM total time."""
        return self.cd_total_ms / max(self.im_total_ms, 1e-9)

    @property
    def build_share_of_cd(self) -> float:
        """Fraction of CD's total time spent building the hyper-graph."""
        return self.build_ms / max(self.cd_total_ms, 1e-9)


def scaling_study(
    scales: Sequence[float],
    dataset: str = "wiki-vote",
    budget: float = 10.0,
    alpha: float = 1.0,
    num_hyperedges: Optional[int] = None,
    pair_strategy: str = "gradient",
    seed: SeedLike = 2016,
    verbose: bool = False,
) -> List[ScalingRow]:
    """Measure the timing decomposition at each analogue scale.

    ``num_hyperedges=None`` uses the ``O(n log n)`` default so theta grows
    with the network, as in the paper's setup.  ``pair_strategy`` defaults
    to the gradient heuristic so CD's cost reflects the efficient variant;
    pass ``"cyclic"`` for the paper's exhaustive sweep.
    """
    rows: List[ScalingRow] = []
    for scale in scales:
        graph, _ = load_dataset(dataset, scale=scale, alpha=alpha, seed=seed)
        population = paper_mixture(graph.num_nodes, seed=seed)
        problem = CIMProblem(IndependentCascade(graph), population, budget=budget)

        start = time.perf_counter()
        hypergraph = problem.build_hypergraph(num_hyperedges=num_hyperedges, seed=seed)
        build_ms = (time.perf_counter() - start) * 1000.0

        start = time.perf_counter()
        max_coverage(hypergraph, int(budget))
        im_ms = (time.perf_counter() - start) * 1000.0

        start = time.perf_counter()
        ud = unified_discount(problem, hypergraph)
        ud_ms = (time.perf_counter() - start) * 1000.0

        start = time.perf_counter()
        coordinate_descent_hypergraph(
            problem, hypergraph, ud.configuration, pair_strategy=pair_strategy
        )
        cd_ms = (time.perf_counter() - start) * 1000.0

        row = ScalingRow(
            scale=float(scale),
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            theta=hypergraph.num_hyperedges,
            build_ms=build_ms,
            im_ms=im_ms,
            ud_ms=ud_ms,
            cd_ms=cd_ms,
        )
        rows.append(row)
        if verbose:
            print(
                f"  scale={row.scale:6.3f} n={row.num_nodes:7,d} theta={row.theta:8,d} "
                f"build={row.build_ms:9.1f}ms im={row.im_ms:7.1f}ms "
                f"ud={row.ud_ms:8.1f}ms cd={row.cd_ms:8.1f}ms "
                f"CD/IM={row.cd_over_im:5.2f} build-share={row.build_share_of_cd:5.1%}"
            )
    return rows
