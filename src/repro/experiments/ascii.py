"""Terminal (ASCII) charts for experiment output.

The paper's figures are line charts; for a CLI-only environment these
helpers render the same series as Unicode block plots so trends (who
wins, where curves peak) are visible straight from ``repro-cim
reproduce`` output without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ReproError

__all__ = ["sparkline", "bar_chart", "multi_series_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a numeric series.

    >>> sparkline([1, 2, 3, 2, 1])
    '▁▅█▅▁'
    """
    values = [float(v) for v in values]
    if not values:
        raise ReproError("cannot sparkline an empty series")
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[0] * len(values)
    scale = (len(_SPARK_LEVELS) - 1) / (hi - lo)
    return "".join(_SPARK_LEVELS[int(round((v - lo) * scale))] for v in values)


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart with labels and values.

    >>> print(bar_chart([("im", 10.0), ("cd", 20.0)], width=10))
    im █████      10
    cd ██████████  20
    """
    rows = [(str(label), float(value)) for label, value in rows]
    if not rows:
        raise ReproError("cannot chart an empty row list")
    peak = max(value for _, value in rows)
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        length = int(round(width * value / peak)) if peak > 0 else 0
        bar = "█" * length
        lines.append(
            f"{label:>{label_width}s} {bar:<{width}s} {value:g}{unit}"
        )
    return "\n".join(lines)


def multi_series_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
) -> str:
    """A compact multi-series scatter/line chart on a character grid.

    Each series gets a marker (its name's first letter, uppercased on
    collision); shared extents; a legend and y-range footer.  Designed for
    Figure-3-style "three curves vs budget" comparisons.
    """
    if not series:
        raise ReproError("need at least one series")
    x_values = [float(x) for x in x_values]
    if not x_values:
        raise ReproError("need at least one x value")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ReproError(f"series {name!r} length differs from x_values")

    all_y = [float(y) for ys in series.values() for y in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    x_lo, x_hi = min(x_values), max(x_values)
    y_span = max(y_hi - y_lo, 1e-12)
    x_span = max(x_hi - x_lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    markers: Dict[str, str] = {}
    used: set = set()
    for name in series:
        marker = name[0]
        if marker in used:
            marker = marker.upper()
        while marker in used:
            marker = chr(ord(marker) + 1)
        used.add(marker)
        markers[name] = marker

    for name, ys in series.items():
        marker = markers[name]
        for x, y in zip(x_values, ys):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((float(y) - y_lo) / y_span * (height - 1)))
            grid[row][col] = marker

    lines = ["".join(row) for row in grid]
    legend = "  ".join(f"{marker}={name}" for name, marker in markers.items())
    footer = (
        f"x: {x_lo:g}..{x_hi:g}   y: {y_lo:.1f}..{y_hi:.1f}   {legend}"
    )
    return "\n".join(lines + [footer])
