"""Benchmark datasets (Table 2) and their offline analogues.

The paper evaluates on four SNAP networks.  They are not redistributable
with this repository and the largest (com-LiveJournal, 69M edges) is out of
reach for pure Python, so each dataset is represented by

* its *published* statistics (``paper_num_nodes`` etc. — regenerating the
  paper's Table 2), and
* a deterministic *analogue generator* producing a reduced-scale graph with
  the same directedness and degree-distribution shape (see DESIGN.md §5 for
  why this preserves the experimental conclusions).

``scale`` controls analogue size: 1.0 reproduces the published node count;
the default experiment scale keeps runs laptop-sized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    ca_astroph_like,
    com_dblp_like,
    com_lj_like,
    wiki_vote_like,
)
from repro.graphs.weights import assign_weighted_cascade
from repro.rrset.sample_size import default_num_rr_sets
from repro.utils.rng import SeedLike

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "table2_rows"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table-2 dataset: published stats + analogue generator."""

    name: str
    paper_num_nodes: int
    paper_num_edges: int
    paper_average_degree: float
    paper_num_hyperedges: float  # the paper's mh column (in millions)
    directed: bool
    generator: Callable[[float, SeedLike], DiGraph]

    def analogue(self, scale: float = 0.02, seed: SeedLike = 2016) -> DiGraph:
        """Build the reduced-scale analogue graph (unit edge probabilities)."""
        return self.generator(scale, seed)


DATASETS: Dict[str, DatasetSpec] = {
    "wiki-vote": DatasetSpec(
        name="wiki-vote",
        paper_num_nodes=7115,
        paper_num_edges=103689,
        paper_average_degree=14.6,
        paper_num_hyperedges=1.0e6,
        directed=True,
        generator=lambda scale, seed: wiki_vote_like(scale=scale, seed=seed),
    ),
    "ca-astroph": DatasetSpec(
        name="ca-astroph",
        paper_num_nodes=18772,
        paper_num_edges=396160,
        paper_average_degree=21.1,
        paper_num_hyperedges=1.0e6,
        directed=False,
        generator=lambda scale, seed: ca_astroph_like(scale=scale, seed=seed),
    ),
    "com-dblp": DatasetSpec(
        name="com-dblp",
        paper_num_nodes=317080,
        paper_num_edges=2099732,
        paper_average_degree=6.6,
        paper_num_hyperedges=2.0e6,
        directed=False,
        generator=lambda scale, seed: com_dblp_like(scale=scale, seed=seed),
    ),
    "com-livejournal": DatasetSpec(
        name="com-livejournal",
        paper_num_nodes=3997962,
        paper_num_edges=69362378,
        paper_average_degree=17.4,
        paper_num_hyperedges=4.0e6,
        directed=False,
        generator=lambda scale, seed: com_lj_like(scale=scale, seed=seed),
    ),
}


def load_dataset(
    name: str,
    scale: float = 0.02,
    alpha: float = 1.0,
    seed: SeedLike = 2016,
) -> Tuple[DiGraph, DatasetSpec]:
    """Build a weighted analogue of a Table-2 dataset.

    Applies the paper's weighted-cascade probabilities
    ``alpha / in_degree(v)`` on top of the analogue topology.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None
    graph = assign_weighted_cascade(spec.analogue(scale=scale, seed=seed), alpha=alpha)
    return graph, spec


def table2_rows(scale: float = 0.02, seed: SeedLike = 2016) -> List[Dict[str, object]]:
    """Regenerate Table 2: published stats side by side with the analogue.

    The ``mh`` column reports the hyper-edge count our experiments use for
    the analogue (``O(n log n)``), next to the paper's fixed choice.
    """
    rows: List[Dict[str, object]] = []
    for spec in DATASETS.values():
        graph = spec.analogue(scale=scale, seed=seed)
        rows.append(
            {
                "network": spec.name,
                "paper_n": spec.paper_num_nodes,
                "paper_m": spec.paper_num_edges,
                "paper_avg_degree": spec.paper_average_degree,
                "paper_mh": spec.paper_num_hyperedges,
                "analogue_n": graph.num_nodes,
                "analogue_m": graph.num_edges,
                "analogue_avg_degree": graph.num_edges / graph.num_nodes,
                "analogue_mh": default_num_rr_sets(graph.num_nodes),
            }
        )
    return rows
