"""One-call regeneration of every paper exhibit, persisted to CSV.

``generate_full_report(output_dir)`` runs Table 2, all Figure-3 panels,
Figures 4–6 and Tables 3–4 at a configurable scale and writes one CSV per
exhibit plus a ``MANIFEST.txt`` describing the run — the artifact a
reproduction reviewer asks for.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.constrained import constrained_matrix
from repro.experiments.figures import (
    figure3_influence_spread,
    figure4_approximation_bound,
    figure5_spread_vs_discount,
    figure6_running_time,
)
from repro.experiments.tables import table3_search_step, table4_sensitivity
from repro.experiments.datasets import table2_rows
from repro.io.records import write_records_csv
from repro.obs.context import get_tracer, observe
from repro.obs.metrics import MetricsRegistry
from repro.utils.rng import SeedLike

__all__ = ["generate_full_report"]

PathLike = Union[str, Path]


def generate_full_report(
    output_dir: PathLike,
    dataset: str = "wiki-vote",
    scale: float = 0.02,
    budgets: Sequence[float] = (5, 10, 20),
    alphas: Sequence[float] = (0.7, 0.85, 1.0),
    figure5_budget: float = 20,
    num_hyperedges: Optional[int] = 6000,
    evaluation_samples: int = 1000,
    seed: SeedLike = 2016,
    checkpoint_dir: Optional[PathLike] = None,
    resume: bool = False,
    workers: Optional[int] = None,
    supervision=None,
) -> Dict[str, Path]:
    """Run every exhibit and write one CSV per exhibit into ``output_dir``.

    ``checkpoint_dir`` / ``resume`` enable per-cell snapshots for the grid
    exhibits (Figures 3 and 6), so a killed report run can pick up from
    its last completed (budget, method) cell.  ``workers`` parallelizes
    the sampling inside those exhibits (``"auto"`` = one per CPU) without
    changing any number in the CSVs, and ``supervision`` sets the worker
    pool's crash/straggler recovery policy (see
    :mod:`repro.parallel.supervisor`) — recovery never changes a number
    either.

    Returns a mapping of exhibit name to the file written.
    """
    checkpoint_path = str(checkpoint_dir) if checkpoint_dir is not None else None
    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}

    # A private registry isolates this report's metrics from whatever ran
    # earlier in the process; ``observe`` merges them up on exit so ambient
    # collection (e.g. ``REPRO_METRICS_OUT``) still sees them.
    registry = MetricsRegistry()

    def emit(name: str, records: List[dict]) -> None:
        path = output / f"{name}.csv"
        write_records_csv(records, path)
        written[name] = path
        registry.inc("report.exhibits_total")

    with observe(metrics=registry), get_tracer().span(
        "report.generate", dataset=dataset, scale=float(scale)
    ) as span:
        emit("table2_datasets", table2_rows(scale=scale, seed=seed))

        fig3_records: List[dict] = []
        for alpha in alphas:
            rows = figure3_influence_spread(
                dataset=dataset,
                alpha=alpha,
                budgets=budgets,
                scale=scale,
                num_hyperedges=num_hyperedges,
                evaluation_samples=evaluation_samples,
                seed=seed,
                checkpoint_dir=checkpoint_path,
                resume=resume,
                workers=workers,
                supervision=supervision,
            )
            fig3_records.extend(asdict(row) for row in rows)
        emit("figure3_influence_spread", fig3_records)

        bounds = figure4_approximation_bound(
            dataset=dataset,
            budgets=[int(b) for b in budgets],
            scale=scale,
            num_hyperedges=num_hyperedges,
            seed=seed,
        )
        emit(
            "figure4_approximation_bound",
            [{"budget": budget, "bound": bound} for budget, bound in bounds.items()],
        )

        emit(
            "figure5_spread_vs_discount",
            figure5_spread_vs_discount(
                dataset=dataset,
                budget=figure5_budget,
                scale=scale,
                num_hyperedges=num_hyperedges,
                seed=seed,
            ),
        )

        emit(
            "figure6_running_time",
            figure6_running_time(
                dataset=dataset,
                budgets=budgets,
                scale=scale,
                num_hyperedges=num_hyperedges,
                seed=seed,
                checkpoint_dir=checkpoint_path,
                resume=resume,
                workers=workers,
                supervision=supervision,
            ),
        )

        emit(
            "table3_search_step",
            table3_search_step(
                dataset=dataset,
                budgets=budgets,
                scale=scale,
                num_hyperedges=num_hyperedges,
                seed=seed,
            ),
        )

        emit(
            "table4_sensitivity",
            table4_sensitivity(
                dataset=dataset,
                budget=figure5_budget,
                scale=scale,
                num_hyperedges=num_hyperedges,
                seed=seed,
            ),
        )

        emit(
            "constrained_matrix",
            constrained_matrix(
                dataset=dataset,
                budget=float(budgets[0]),
                scale=scale,
                num_hyperedges=num_hyperedges,
                evaluation_samples=evaluation_samples,
                seed=seed,
                checkpoint_dir=checkpoint_path,
                resume=resume,
                workers=workers,
                supervision=supervision,
            ),
        )
        span.set(exhibits=len(written))

    metrics_path = output / "metrics.json"
    registry.export_json(metrics_path)
    written["metrics"] = metrics_path

    manifest = output / "MANIFEST.txt"
    manifest.write_text(
        "\n".join(
            [
                "repro — full experiment report",
                f"dataset analogue: {dataset} (scale {scale})",
                f"budgets: {list(budgets)}  alphas: {list(alphas)}",
                f"hyper-edges per problem: {num_hyperedges}",
                f"evaluation samples: {evaluation_samples}",
                f"seed: {seed}",
                "",
                "files:",
                *(f"  {name}: {path.name}" for name, path in sorted(written.items())),
                "",
            ]
        ),
        encoding="utf-8",
    )
    written["manifest"] = manifest
    return written
