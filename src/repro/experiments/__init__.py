"""Experiment harness: datasets, runners and exhibit regeneration."""

from repro.experiments.datasets import (
    DATASETS,
    DatasetSpec,
    load_dataset,
    table2_rows,
)
from repro.experiments.constrained import constrained_matrix, default_constraint_scenarios
from repro.experiments.runner import ExperimentResult, run_methods
from repro.experiments.figures import (
    figure3_influence_spread,
    figure4_approximation_bound,
    figure5_spread_vs_discount,
    figure6_running_time,
)
from repro.experiments.ascii import bar_chart, multi_series_chart, sparkline
from repro.experiments.report import generate_full_report
from repro.experiments.scaling import ScalingRow, scaling_study
from repro.experiments.tables import table3_search_step, table4_sensitivity

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "table2_rows",
    "ExperimentResult",
    "run_methods",
    "constrained_matrix",
    "default_constraint_scenarios",
    "figure3_influence_spread",
    "figure4_approximation_bound",
    "figure5_spread_vs_discount",
    "figure6_running_time",
    "table3_search_step",
    "table4_sensitivity",
    "generate_full_report",
    "scaling_study",
    "ScalingRow",
    "sparkline",
    "bar_chart",
    "multi_series_chart",
]
