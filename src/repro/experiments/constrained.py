"""The constrained scenario matrix: solvers × constraint regimes.

The paper's experiments (Section 9) compare solvers under one global
budget; a production discount service also has to answer *constrained*
variants of the same question — limited access (only k users reachable,
Feng et al. arXiv:2010.01331), partial incentives (per-user caps, Demaine
et al. arXiv:1401.7970), and their combinations.  This module runs the
registered solver set across a small matrix of such regimes, reusing the
:func:`~repro.experiments.runner.run_methods` protocol (shared
hyper-graph per cell row, independent MC scoring, content-keyed
checkpoints — constraint specs are part of the key).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.constraints import Constraint, PerUserCap, TopKAccess
from repro.experiments.runner import build_problem, run_methods
from repro.obs.context import get_tracer
from repro.utils.rng import SeedLike

__all__ = ["default_constraint_scenarios", "constrained_matrix"]


def default_constraint_scenarios(
    num_nodes: int, budget: float
) -> List[Tuple[str, Optional[List[Constraint]]]]:
    """The report's constraint regimes, scaled to the problem size.

    ``unconstrained`` is the baseline row (identical numbers to the plain
    experiment grid — the degradation anchor); ``cap-0.5`` halves every
    user's maximum discount; ``access-k`` restricts support to the
    spillover-best 10% of users (at least ``2 * budget`` so the budget
    remains spendable); ``cap+access`` intersects both.
    """
    k = max(int(2 * budget), num_nodes // 10, 1)
    return [
        ("unconstrained", None),
        ("cap-0.5", [PerUserCap(0.5)]),
        (f"access-{k}", [TopKAccess(k)]),
        (f"cap+access-{k}", [PerUserCap(0.5), TopKAccess(k)]),
    ]


def constrained_matrix(
    dataset: str = "wiki-vote",
    budget: float = 10.0,
    methods: Sequence[str] = ("ud", "cd", "gradient", "fw"),
    scenarios: Optional[Sequence[Tuple[str, Optional[List[Constraint]]]]] = None,
    alpha: float = 1.0,
    scale: float = 0.02,
    num_hyperedges: Optional[int] = 6000,
    evaluation_samples: int = 500,
    seed: SeedLike = 2016,
    checkpoint_dir=None,
    resume: bool = False,
    workers: Optional[int] = None,
    supervision=None,
) -> List[Dict[str, object]]:
    """Run every (scenario, method) cell and return one record per cell.

    All scenarios share one problem (same graph, curves, budget); each
    scenario row runs through :func:`run_methods`, so within a scenario
    all methods share one hyper-graph.  Records carry the MC-scored
    spread and the hyper-graph estimate per cell, so the matrix shows how
    much each constraint regime costs each solver.
    """
    problem = build_problem(dataset, budget, alpha=alpha, scale=scale, seed=seed)
    if scenarios is None:
        scenarios = default_constraint_scenarios(problem.num_nodes, budget)

    records: List[Dict[str, object]] = []
    with get_tracer().span(
        "experiment.constrained_matrix",
        scenarios=len(scenarios),
        methods=list(methods),
    ):
        for scenario_name, constraints in scenarios:
            results = run_methods(
                problem,
                methods,
                num_hyperedges=num_hyperedges,
                evaluation_samples=evaluation_samples,
                seed=seed,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                workers=workers,
                supervision=supervision,
                constraints=constraints,
            )
            for result in results:
                records.append(
                    {
                        "scenario": scenario_name,
                        "method": result.method,
                        "budget": float(budget),
                        "spread_mean": float(result.spread_mean),
                        "spread_std": float(result.spread_std),
                        "hypergraph_estimate": float(result.hypergraph_estimate),
                        "method_ms": float(result.method_ms),
                        "constrained": constraints is not None,
                    }
                )
    return records
