"""End-to-end experiment runner.

Reproduces the paper's evaluation protocol (Section 9): build the graph,
assign synthesized purchase-probability curves, run each solver on a shared
random hyper-graph, then score every returned configuration with
independent Monte-Carlo simulations (the paper uses 20,000; the sample
count here is configurable so benchmarks stay laptop-sized).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.population import CurvePopulation, paper_mixture
from repro.core.problem import CIMProblem
from repro.core.solvers import solve
from repro.diffusion.independent_cascade import IndependentCascade
from repro.experiments.datasets import load_dataset
from repro.rrset.hypergraph import RRHypergraph
from repro.utils.rng import SeedLike, spawn_generators

__all__ = ["ExperimentResult", "run_methods", "build_problem"]


@dataclass
class ExperimentResult:
    """One (method, problem) cell of an experiment grid."""

    method: str
    budget: float
    spread_mean: float
    spread_std: float
    hypergraph_estimate: float
    hypergraph_ms: float
    method_ms: float
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        """Total running time (hyper-graph build + solver), milliseconds."""
        return self.hypergraph_ms + self.method_ms


def build_problem(
    dataset: str,
    budget: float,
    alpha: float = 1.0,
    scale: float = 0.02,
    sensitive_fraction: float = 0.85,
    linear_fraction: float = 0.10,
    insensitive_fraction: float = 0.05,
    seed: SeedLike = 2016,
) -> CIMProblem:
    """Assemble a CIM problem from a Table-2 analogue dataset."""
    graph, _ = load_dataset(dataset, scale=scale, alpha=alpha, seed=seed)
    population = paper_mixture(
        graph.num_nodes,
        sensitive_fraction=sensitive_fraction,
        linear_fraction=linear_fraction,
        insensitive_fraction=insensitive_fraction,
        seed=seed,
    )
    return CIMProblem(IndependentCascade(graph), population, budget=budget)


def run_methods(
    problem: CIMProblem,
    methods: Sequence[str],
    hypergraph: Optional[RRHypergraph] = None,
    num_hyperedges: Optional[int] = None,
    evaluation_samples: int = 2000,
    seed: SeedLike = 2016,
    solver_options: Optional[Dict[str, Dict[str, object]]] = None,
) -> List[ExperimentResult]:
    """Run several solvers on one problem and MC-score their outputs.

    All solvers share one hyper-graph (built here if not supplied), exactly
    as in the paper's protocol; its build time is attributed to each
    result's ``hypergraph_ms`` so Figure 6's decomposition can be redrawn.
    """
    hypergraph_rng, solver_rng, eval_rng = spawn_generators(seed, 3)
    hypergraph_ms = 0.0
    if hypergraph is None:
        import time

        start = time.perf_counter()
        hypergraph = problem.build_hypergraph(
            num_hyperedges=num_hyperedges, seed=hypergraph_rng
        )
        hypergraph_ms = (time.perf_counter() - start) * 1000.0

    results: List[ExperimentResult] = []
    options_by_method = solver_options or {}
    for method in methods:
        result = solve(
            problem,
            method,
            hypergraph=hypergraph,
            seed=solver_rng,
            **options_by_method.get(method, {}),
        )
        estimate = problem.evaluate(
            result.configuration, num_samples=evaluation_samples, seed=eval_rng
        )
        method_ms = result.timings.as_millis().get(method, 0.0)
        results.append(
            ExperimentResult(
                method=method,
                budget=problem.budget,
                spread_mean=estimate.mean,
                spread_std=estimate.stddev,
                hypergraph_estimate=result.spread_estimate,
                hypergraph_ms=hypergraph_ms,
                method_ms=method_ms,
                extras=result.extras,
            )
        )
    return results
