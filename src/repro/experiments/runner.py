"""End-to-end experiment runner.

Reproduces the paper's evaluation protocol (Section 9): build the graph,
assign synthesized purchase-probability curves, run each solver on a shared
random hyper-graph, then score every returned configuration with
independent Monte-Carlo simulations (the paper uses 20,000; the sample
count here is configurable so benchmarks stay laptop-sized).

Fault tolerance: ``run_methods`` validates its inputs up front (a bad
budget fails in microseconds, not after an hour inside a solver), retries
transient Monte-Carlo scoring failures with bounded seeded backoff, and —
given a ``checkpoint_dir`` — writes one atomic JSON snapshot per completed
(method) cell plus an NPZ of the shared hyper-graph, keyed by a content
hash of (problem, seed, parameters).  A killed grid re-run with
``resume=True`` replays completed cells from disk and recomputes only the
rest; because every cell draws from its own pre-spawned RNG stream, the
resumed grid is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.constraints import constraint_spec
from repro.core.population import CurvePopulation, paper_mixture
from repro.core.problem import CIMProblem
from repro.core.solvers import solve
from repro.diffusion.independent_cascade import IndependentCascade
from repro.exceptions import CheckpointError, ConfigurationError, GraphError
from repro.experiments.datasets import load_dataset
from repro.obs.context import get_metrics, get_tracer
from repro.rrset.hypergraph import RRHypergraph
from repro.rrset.sample_size import default_num_rr_sets
from repro.runtime.checkpoint import CheckpointStore, content_key
from repro.runtime.deadline import DeadlineLike
from repro.runtime.faults import maybe_inject
from repro.runtime.retry import retry
from repro.utils.rng import SeedLike, spawn_generators

__all__ = ["ExperimentResult", "run_methods", "build_problem", "validate_run_inputs"]


@dataclass
class ExperimentResult:
    """One (method, problem) cell of an experiment grid."""

    method: str
    budget: float
    spread_mean: float
    spread_std: float
    hypergraph_estimate: float
    hypergraph_ms: float
    method_ms: float
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        """Total running time (hyper-graph build + solver), milliseconds."""
        return self.hypergraph_ms + self.method_ms

    # ------------------------------------------------------------------
    # checkpoint round-trip
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe snapshot of this cell (for checkpointing)."""
        from repro.io.serialization import _jsonable

        return {
            "method": self.method,
            "budget": float(self.budget),
            "spread_mean": float(self.spread_mean),
            "spread_std": float(self.spread_std),
            "hypergraph_estimate": float(self.hypergraph_estimate),
            "hypergraph_ms": float(self.hypergraph_ms),
            "method_ms": float(self.method_ms),
            "extras": _jsonable(self.extras),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a cell from :meth:`to_payload` output."""
        try:
            return cls(
                method=str(payload["method"]),
                budget=float(payload["budget"]),
                spread_mean=float(payload["spread_mean"]),
                spread_std=float(payload["spread_std"]),
                hypergraph_estimate=float(payload["hypergraph_estimate"]),
                hypergraph_ms=float(payload["hypergraph_ms"]),
                method_ms=float(payload["method_ms"]),
                extras=dict(payload.get("extras", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed experiment-cell payload: {exc}") from exc


def build_problem(
    dataset: str,
    budget: float,
    alpha: float = 1.0,
    scale: float = 0.02,
    sensitive_fraction: float = 0.85,
    linear_fraction: float = 0.10,
    insensitive_fraction: float = 0.05,
    seed: SeedLike = 2016,
) -> CIMProblem:
    """Assemble a CIM problem from a Table-2 analogue dataset.

    Dataset loading is retried (bounded, deterministic backoff): analogue
    generation is pure compute, but the loader is also the place where a
    future real-dataset path would touch the filesystem or network.
    """
    graph, _ = retry(
        lambda: load_dataset(dataset, scale=scale, alpha=alpha, seed=seed),
        attempts=3,
        backoff=0.01,
        seed=0,
    )
    population = paper_mixture(
        graph.num_nodes,
        sensitive_fraction=sensitive_fraction,
        linear_fraction=linear_fraction,
        insensitive_fraction=insensitive_fraction,
        seed=seed,
    )
    return CIMProblem(IndependentCascade(graph), population, budget=budget)


def validate_run_inputs(
    problem: CIMProblem,
    methods: Sequence[str],
    evaluation_samples: int,
) -> None:
    """Reject malformed experiment inputs before any expensive work.

    ``CIMProblem`` validates at construction, but its fields are plain
    dataclass attributes — a budget overwritten with ``NaN`` after
    construction would otherwise surface as an inscrutable failure deep
    inside a solver, hours into a grid.
    """
    if problem.num_nodes == 0:
        raise GraphError("cannot run experiments on an empty graph (0 nodes)")
    budget = problem.budget
    if not isinstance(budget, (int, float)) or math.isnan(budget) or math.isinf(budget):
        raise ConfigurationError(f"budget must be a finite number, got {budget!r}")
    if budget <= 0:
        raise ConfigurationError(f"budget must be positive, got {budget}")
    if not methods:
        raise ConfigurationError("methods must name at least one solver")
    if evaluation_samples < 1:
        raise ConfigurationError(
            f"evaluation_samples must be >= 1, got {evaluation_samples}"
        )


def _problem_fingerprint(problem: CIMProblem) -> Dict[str, object]:
    """The content of a problem that determines experiment output."""
    graph = problem.graph
    return {
        "num_nodes": problem.num_nodes,
        "num_edges": graph.num_edges,
        "out_offsets": graph.out_offsets,
        "out_targets": graph.out_targets,
        "out_probs": graph.out_probs,
        "budget": float(problem.budget),
        # Curve responses on a fixed grid pin down the population without
        # needing every curve class to be individually hashable.
        "curves": problem.population.probabilities_at(0.25),
        "curves_hi": problem.population.probabilities_at(0.75),
    }


def run_methods(
    problem: CIMProblem,
    methods: Sequence[str],
    hypergraph: Optional[RRHypergraph] = None,
    num_hyperedges: Optional[int] = None,
    evaluation_samples: int = 2000,
    seed: SeedLike = 2016,
    solver_options: Optional[Dict[str, Dict[str, object]]] = None,
    deadline: DeadlineLike = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    workers: Optional[int] = None,
    supervision=None,
    constraints=None,
) -> List[ExperimentResult]:
    """Run several solvers on one problem and MC-score their outputs.

    All solvers share one hyper-graph (built here if not supplied), exactly
    as in the paper's protocol; its build time is attributed to each
    result's ``hypergraph_ms`` so Figure 6's decomposition can be redrawn.

    Each (method) cell draws from its own RNG stream spawned up front from
    ``seed``, so cells are independent: computing a subset of cells (after
    a crash, say) yields exactly the same numbers as computing all of them.

    Parameters
    ----------
    deadline:
        Optional wall-clock budget shared by every cell (seconds or a
        :class:`~repro.runtime.Deadline`); expiring cells return partial
        results tagged ``extras["partial"]``.
    checkpoint_dir:
        Directory for atomic per-cell snapshots (plus a cached NPZ of the
        shared hyper-graph), keyed by a content hash of (problem, seed,
        parameters).  Requires an ``int`` seed — a live ``Generator``
        cannot be replayed.
    resume:
        With ``checkpoint_dir``: load completed cells from disk instead of
        recomputing them.  Cells whose snapshots are missing (or from a
        different content key) are computed and checkpointed as usual;
        snapshots that fail integrity verification or do not parse are
        quarantined (renamed ``*.quarantined``) and recomputed rather than
        crashing the grid.
    workers:
        Parallel processes for hyper-graph sampling and Monte-Carlo
        scoring (``0`` = one per CPU).  Deliberately *excluded* from the
        checkpoint content key: the parallel engine is deterministic
        across worker counts, so a grid checkpointed with ``workers=4``
        resumes bit-identically with ``workers=1`` and vice versa.
    supervision:
        Pool recovery policy for hyper-graph sampling and scoring (a
        :class:`~repro.parallel.supervisor.SupervisionPolicy` or kwargs
        dict); never changes the numbers of a run that completes.
    constraints:
        Optional solver constraints (a
        :class:`~repro.core.constraints.Constraint` or list of them)
        applied to *every* cell — the constrained scenario matrix runs
        each method under the same feasible set.  The constraint spec is
        part of the checkpoint content key (only when constraints are
        present, so unconstrained grids keep their historical keys): a
        constrained grid never resumes an unconstrained grid's cells.
    """
    validate_run_inputs(problem, methods, evaluation_samples)

    store: Optional[CheckpointStore] = None
    if checkpoint_dir is not None:
        if seed is not None and not isinstance(seed, int):
            raise CheckpointError(
                "checkpointing requires a reproducible seed (int or None); "
                f"got {type(seed).__name__}"
            )
        key_fields = dict(
            problem=_problem_fingerprint(problem),
            seed=seed,
            num_hyperedges=num_hyperedges,
            evaluation_samples=evaluation_samples,
            prebuilt_hypergraph=hypergraph is not None,
        )
        spec = constraint_spec(constraints)
        if spec is not None:
            key_fields["constraints"] = spec
        key = content_key(**key_fields)
        store = CheckpointStore(checkpoint_dir, key)

    # One stream per cell (solver + evaluation), spawned before any cell
    # runs: cell k's stream does not depend on cells 0..k-1 having run.
    streams = spawn_generators(seed, 1 + 2 * len(methods))
    hypergraph_rng = streams[0]

    metrics = get_metrics()
    with get_tracer().span(
        "experiment.run_methods", methods=list(methods), cells=len(methods)
    ) as span:
        results: List[ExperimentResult] = [None] * len(methods)  # type: ignore[list-item]
        pending: List[int] = []
        for index, method in enumerate(methods):
            cell_name = f"cell-{index:03d}-{method}"
            cell: Optional[ExperimentResult] = None
            if store is not None and resume:
                # salvage_json quarantines torn/corrupt snapshots itself;
                # a snapshot that parses as JSON but is not a valid cell
                # payload is quarantined here for the same reason — resume
                # recomputes instead of crashing on damaged state.
                payload = store.salvage_json(cell_name)
                if payload is not None:
                    try:
                        cell = ExperimentResult.from_payload(payload)
                    except CheckpointError:
                        store.quarantine(cell_name)
                        span.event("cell_quarantined", index=index, method=method)
            if cell is not None:
                results[index] = cell
                span.event("cell_resumed", index=index, method=method)
                metrics.inc("checkpoint.cell_hits_total")
            else:
                pending.append(index)
        span.set(computed=len(pending), resumed=len(methods) - len(pending))
        metrics.inc("runner.cells_total", len(methods))
        metrics.inc("runner.cells_computed_total", len(pending))
        if not pending:
            return results

        hypergraph_ms = 0.0
        if hypergraph is None:
            import time

            if store is not None and resume:
                arrays = store.salvage_arrays("hypergraph")
                if arrays is not None:
                    try:
                        hypergraph = RRHypergraph.from_arrays(arrays)
                    except (KeyError, TypeError, ValueError):
                        store.quarantine("hypergraph")
                        span.event("hypergraph_quarantined")
                    else:
                        span.set(hypergraph_resumed=True)
                        metrics.inc("checkpoint.hypergraph_hits_total")
            if hypergraph is None:
                start = time.perf_counter()
                hypergraph = problem.build_hypergraph(
                    num_hyperedges=num_hyperedges,
                    seed=hypergraph_rng,
                    deadline=deadline,
                    workers=workers,
                    supervision=supervision,
                )
                hypergraph_ms = (time.perf_counter() - start) * 1000.0
                if store is not None:
                    store.save_arrays("hypergraph", **hypergraph.to_arrays())

        options_by_method = solver_options or {}
        for index in pending:
            method = methods[index]
            solver_rng, eval_rng = streams[1 + 2 * index], streams[2 + 2 * index]
            maybe_inject("runner.cell")
            span.event("cell", index=index, method=method)
            result = solve(
                problem,
                method,
                hypergraph=hypergraph,
                seed=solver_rng,
                deadline=deadline,
                constraints=constraints,
                **options_by_method.get(method, {}),
            )
            # Monte-Carlo scoring is the one stage re-run on transient
            # failure; it re-draws from eval_rng, so a retry changes the
            # sample stream but stays within the estimator's statistical
            # contract.
            estimate = retry(
                lambda: _scored(
                    problem, result.configuration, evaluation_samples, eval_rng, workers
                ),
                attempts=3,
                backoff=0.01,
                seed=0,
            )
            method_ms = result.timings.as_millis().get(method, 0.0)
            cell = ExperimentResult(
                method=method,
                budget=problem.budget,
                spread_mean=estimate.mean,
                spread_std=estimate.stddev,
                hypergraph_estimate=result.spread_estimate,
                hypergraph_ms=hypergraph_ms,
                method_ms=method_ms,
                extras=result.extras,
            )
            if store is not None:
                store.save_json(f"cell-{index:03d}-{method}", cell.to_payload())
            results[index] = cell
    return results


def _scored(problem, configuration, evaluation_samples, eval_rng, workers=None):
    """MC-score one configuration (separable so faults can target it)."""
    maybe_inject("runner.evaluate")
    return problem.evaluate(
        configuration, num_samples=evaluation_samples, seed=eval_rng, workers=workers
    )
