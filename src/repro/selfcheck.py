"""Installation self-check: fast internal consistency verification.

``repro-cim selfcheck`` runs a battery of sub-second checks that exercise
every layer against closed-form or cross-implementation ground truth —
the "is this install sane?" test a user runs before trusting longer
experiments.  Each check returns (name, passed, detail); the CLI prints a
report and exits non-zero on any failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

__all__ = ["CheckResult", "run_selfcheck", "ALL_CHECKS"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one self-check."""

    name: str
    passed: bool
    detail: str


def _check_graph_substrate() -> CheckResult:
    from repro.graphs.build import from_edges

    g = from_edges([(0, 1, 0.25), (1, 2, 0.5)], num_nodes=3)
    t = g.transpose()
    ok = (
        g.num_edges == 2
        and t.has_edge(1, 0)
        and abs(t.edge_probability(1, 0) - 0.25) < 1e-12
    )
    return CheckResult("graph substrate (CSR + transpose)", ok, "2-edge path round-trip")


def _check_ic_closed_form() -> CheckResult:
    from repro.diffusion.independent_cascade import IndependentCascade
    from repro.graphs.generators import star_graph

    ic = IndependentCascade(star_graph(4, probability=0.1))
    spread = ic.spread([0], num_samples=8000, seed=11)
    ok = abs(spread - 1.4) < 0.06
    return CheckResult(
        "IC simulator vs closed form", ok, f"star I(hub) = {spread:.3f} (expect 1.4)"
    )


def _check_exact_vs_batch() -> CheckResult:
    from repro.core.exact import exact_ui_ic
    from repro.diffusion.batch import batch_configuration_spread_ic
    from repro.graphs.build import from_edges

    g = from_edges([(0, 1, 0.5), (1, 2, 0.4), (0, 2, 0.3)], num_nodes=3)
    q = np.array([0.6, 0.3, 0.1])
    exact = exact_ui_ic(g, q)
    batch = batch_configuration_spread_ic(g, q, num_samples=20000, seed=12)
    ok = abs(batch.mean - exact) < 5 * batch.stderr + 1e-6
    return CheckResult(
        "batch engine vs exact UI", ok, f"{batch.mean:.4f} vs exact {exact:.4f}"
    )


def _check_theorem9_estimator() -> CheckResult:
    from repro.core.exact import exact_ui_ic
    from repro.diffusion.independent_cascade import IndependentCascade
    from repro.graphs.build import from_edges
    from repro.rrset.estimator import HypergraphObjective
    from repro.rrset.hypergraph import RRHypergraph

    g = from_edges([(0, 1, 0.5), (1, 2, 0.4), (0, 2, 0.3)], num_nodes=3)
    q = np.array([0.6, 0.3, 0.1])
    hg = RRHypergraph.build(IndependentCascade(g), 20000, seed=13)
    estimate = HypergraphObjective(hg, q).value()
    exact = exact_ui_ic(g, q)
    ok = abs(estimate - exact) < 0.06
    return CheckResult(
        "Theorem-9 hyper-graph estimator", ok, f"{estimate:.4f} vs exact {exact:.4f}"
    )


def _check_solver_ordering() -> CheckResult:
    from repro.core.population import paper_mixture
    from repro.core.problem import CIMProblem
    from repro.core.solvers import solve
    from repro.diffusion.independent_cascade import IndependentCascade
    from repro.graphs.generators import erdos_renyi
    from repro.graphs.weights import assign_weighted_cascade

    g = assign_weighted_cascade(erdos_renyi(60, 0.08, seed=14), alpha=1.0)
    problem = CIMProblem(IndependentCascade(g), paper_mixture(60, seed=15), budget=3.0)
    hg = problem.build_hypergraph(num_hyperedges=2000, seed=16)
    im = solve(problem, "im", hypergraph=hg).spread_estimate
    ud = solve(problem, "ud", hypergraph=hg).spread_estimate
    cd = solve(problem, "cd", hypergraph=hg).spread_estimate
    ok = cd >= ud - 1e-6 and ud >= im - 1e-6
    return CheckResult(
        "solver ordering CD >= UD >= IM", ok, f"im={im:.1f} ud={ud:.1f} cd={cd:.1f}"
    )


def _check_toy_example() -> CheckResult:
    from repro.core.configuration import Configuration
    from repro.core.curves import ConcaveCurve
    from repro.core.exact import exact_ui_ic
    from repro.core.population import CurvePopulation
    from repro.graphs.generators import star_graph

    g = star_graph(4, probability=0.1)
    population = CurvePopulation.uniform(5, ConcaveCurve())
    value = exact_ui_ic(g, population.probabilities(Configuration.integer([0], 5).discounts))
    ok = abs(value - 1.4) < 1e-9
    return CheckResult("paper Example 2 anchor (UI = 1.4)", ok, f"UI = {value:.6f}")


ALL_CHECKS: List[Callable[[], CheckResult]] = [
    _check_graph_substrate,
    _check_ic_closed_form,
    _check_exact_vs_batch,
    _check_theorem9_estimator,
    _check_solver_ordering,
    _check_toy_example,
]


def run_selfcheck(verbose: bool = True) -> List[CheckResult]:
    """Run every check; optionally print a report.  Never raises."""
    results: List[CheckResult] = []
    for check in ALL_CHECKS:
        try:
            result = check()
        except Exception as exc:  # a crash is a failed check, not a crash
            result = CheckResult(check.__name__, False, f"raised {exc!r}")
        results.append(result)
        if verbose:
            status = "ok  " if result.passed else "FAIL"
            print(f"  [{status}] {result.name} — {result.detail}")
    if verbose:
        failed = sum(1 for r in results if not r.passed)
        total = len(results)
        print(f"selfcheck: {total - failed}/{total} checks passed")
    return results
