"""Supervised execution of a deterministic chunk plan on a process pool.

:func:`repro.parallel.pool.run_chunks` defines *what* runs — a fixed,
seed-stable chunk plan — and delegates pooled execution to this module,
which decides *how* that plan survives the failures of a multi-hour run
on commodity hardware:

* **Worker death** (OOM kill, segfault, ``os._exit``): the pool breaks
  and every in-flight future fails with ``BrokenProcessPool``.  The
  supervisor restarts the pool and re-dispatches **only** the chunks
  whose futures were lost — completed chunks are never recomputed.
  Because chunk ``i``'s seed stream is fixed at planning time, the
  re-executed chunk is bit-identical to the one that died.
* **Stragglers**: an optional per-chunk soft timeout
  (``chunk_timeout``).  A running task cannot be cancelled, so the pool
  is abandoned and rebuilt; the straggler is charged one attempt and
  re-dispatched on its original seed, while innocent in-flight chunks
  are requeued free of charge.
* **Poison chunks**: each failed attempt is charged against a bounded
  per-chunk budget (``max_chunk_retries``).  A chunk that exhausts it is
  handled per ``on_poison_chunk``: ``"fail"`` raises
  :class:`~repro.exceptions.PoisonChunkError`; ``"serial"`` makes one
  final in-process attempt, rescuing chunks whose failures were
  pool-environmental (by far the common case); ``"partial"`` quarantines
  the chunk and truncates the run at it, degrading through the library's
  existing partial-result contract — the kept prefix is bit-identical to
  a fault-free run.
* **Repeated pool breakage**: after ``max_pool_restarts`` restarts the
  supervisor stops trusting process pools and drains the remaining plan
  serially in-process (``serial_fallback=True``, the default), or raises
  :class:`~repro.exceptions.PoolBrokenError`.

Determinism contract: any run that *completes* — with or without
recoveries — is bit-identical to a fault-free run at any worker count.
Re-dispatch reuses the chunk's original argument tuple and the deadline
budget measured at its first dispatch; the deadline is polled exactly
once per chunk, at first dispatch, in chunk order (the same schedule as
the serial path); results are assembled strictly in chunk order.  A
truncated run (deadline, quarantine) returns a prefix of the fault-free
chunk sequence, every kept chunk bit-identical.  Supervision metrics and
spans are recorded only when a recovery actually happens, so fault-free
metric snapshots also stay worker-count-invariant.

Attribution note: when the pool breaks, the coordinator cannot know
*which* chunk killed the worker, so every lost chunk is charged one
failed attempt.  Innocent bystanders therefore spend retry budget
alongside the true poison chunk; the ``"serial"`` poison policy and the
serial-fallback backstop both rescue them, and the default budget
(``max_chunk_retries=2``) tolerates two cohort losses.

Side-effectful chunk tasks: re-dispatch means a chunk task may run more
than once (and a killed attempt may have completed part of its side
effects).  Tasks that write outside the pool — e.g. the shared-storage
sampler writing RR-set slabs (:mod:`repro.rrset.storage`) — must be
idempotent with byte-identical output per ``(chunk, seed)``, so a retry
simply overwrites any partial artifact of the dead attempt (last writer
wins).  Tasks that only *return* values get this for free from the
deterministic seed plan.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import ConfigurationError, PoisonChunkError, PoolBrokenError
from repro.obs.context import get_metrics, get_tracer
from repro.runtime.deadline import Deadline
from repro.runtime.faults import (
    execute_process_fault,
    maybe_inject,
    planned_process_fault,
)

__all__ = [
    "SupervisionPolicy",
    "SupervisionReport",
    "SupervisionLike",
    "resolve_supervision",
    "run_supervised",
]

_POISON_POLICIES = ("fail", "partial", "serial")


@dataclass(frozen=True)
class SupervisionPolicy:
    """Recovery budgets and degradation policy of the supervised pool.

    Attributes
    ----------
    max_chunk_retries:
        Failed attempts tolerated per chunk beyond the first — a chunk is
        dispatched at most ``1 + max_chunk_retries`` times before it is
        declared poison.  ``0`` disables re-execution.
    chunk_timeout:
        Soft per-chunk wall-clock timeout in seconds; a chunk running
        past it is abandoned and re-dispatched (charged one attempt).
        ``None`` (default) disables straggler detection.
    on_poison_chunk:
        What to do with a chunk that exhausts its retry budget:
        ``"fail"`` raises, ``"partial"`` quarantines it and truncates the
        run at it (keeping the bit-identical prefix), ``"serial"`` makes
        one final in-process attempt and raises only if that fails too.
    max_pool_restarts:
        Pool rebuilds tolerated before giving up on process pools.
    serial_fallback:
        After ``max_pool_restarts`` is exhausted, drain the remaining
        plan serially in-process (``True``, default) or raise
        :class:`~repro.exceptions.PoolBrokenError` (``False``).
    """

    max_chunk_retries: int = 2
    chunk_timeout: Optional[float] = None
    on_poison_chunk: str = "fail"
    max_pool_restarts: int = 3
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if (
            isinstance(self.max_chunk_retries, bool)
            or not isinstance(self.max_chunk_retries, int)
            or self.max_chunk_retries < 0
        ):
            raise ConfigurationError(
                f"max_chunk_retries must be a non-negative int, got "
                f"{self.max_chunk_retries!r}"
            )
        if self.chunk_timeout is not None and not self.chunk_timeout > 0.0:
            raise ConfigurationError(
                f"chunk_timeout must be positive (or None), got {self.chunk_timeout!r}"
            )
        if self.on_poison_chunk not in _POISON_POLICIES:
            raise ConfigurationError(
                f"on_poison_chunk must be one of {_POISON_POLICIES}, got "
                f"{self.on_poison_chunk!r}"
            )
        if (
            isinstance(self.max_pool_restarts, bool)
            or not isinstance(self.max_pool_restarts, int)
            or self.max_pool_restarts < 0
        ):
            raise ConfigurationError(
                f"max_pool_restarts must be a non-negative int, got "
                f"{self.max_pool_restarts!r}"
            )


#: Accepted wherever a ``supervision=`` parameter appears: a policy, a
#: dict of :class:`SupervisionPolicy` field overrides (convenient for
#: CLI/JSON plumbing), or ``None`` for the defaults.
SupervisionLike = Union[None, "SupervisionPolicy", Dict[str, Any]]

_POLICY_FIELDS = frozenset(f.name for f in fields(SupervisionPolicy))

DEFAULT_POLICY = SupervisionPolicy()


def resolve_supervision(supervision: SupervisionLike) -> SupervisionPolicy:
    """Normalize the ``supervision`` argument accepted across the library.

    >>> resolve_supervision(None) == SupervisionPolicy()
    True
    >>> resolve_supervision({"max_chunk_retries": 5}).max_chunk_retries
    5
    """
    if supervision is None:
        return DEFAULT_POLICY
    if isinstance(supervision, SupervisionPolicy):
        return supervision
    if isinstance(supervision, dict):
        unknown = set(supervision) - _POLICY_FIELDS
        if unknown:
            raise ConfigurationError(
                f"unknown supervision option(s) {sorted(unknown)}; valid fields: "
                f"{sorted(_POLICY_FIELDS)}"
            )
        return replace(DEFAULT_POLICY, **supervision)
    raise ConfigurationError(
        f"supervision must be a SupervisionPolicy, a dict of its fields, or "
        f"None, got {type(supervision).__name__}"
    )


@dataclass
class SupervisionReport:
    """What the supervisor had to do to finish (or truncate) one run."""

    pool_restarts: int = 0
    chunks_retried: int = 0
    stragglers: int = 0
    quarantined: List[int] = field(default_factory=list)
    serial_rescues: int = 0
    serial_fallback: bool = False

    @property
    def clean(self) -> bool:
        """True when no recovery action was needed (the fault-free path)."""
        return (
            self.pool_restarts == 0
            and self.chunks_retried == 0
            and self.stragglers == 0
            and not self.quarantined
            and self.serial_rescues == 0
            and not self.serial_fallback
        )


def _call_supervised(
    task: Callable[..., Any],
    args: Tuple[Any, ...],
    directive: Optional[str],
    hang_seconds: float,
) -> Any:
    """Worker-side chunk entry: execute any planned fault, then the task.

    Module-level so it pickles under fork and spawn; reads the per-worker
    payload installed by the pool initializer of :mod:`.pool`.
    """
    from repro.parallel import pool as _pool

    if directive is not None:
        execute_process_fault(directive, hang_seconds)
    return task(_pool._WORKER_PAYLOAD, *args)


def _summary(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


class _Supervisor:
    """One supervised run over a fixed chunk plan.  See module docstring."""

    def __init__(
        self,
        task: Callable[..., Any],
        payload: Any,
        chunk_args: Sequence[Tuple[Any, ...]],
        worker_count: int,
        window: int,
        budget: Deadline,
        inject_site: str,
        policy: SupervisionPolicy,
    ) -> None:
        self.task = task
        self.payload = payload
        self.chunk_args = chunk_args
        self.worker_count = worker_count
        self.window = window
        self.budget = budget
        self.inject_site = inject_site
        self.policy = policy

        self.total = len(chunk_args)
        self.results: Dict[int, Any] = {}
        self.failures = [0] * self.total
        self.causes: Dict[int, List[str]] = {}
        #: Deadline budget measured at each chunk's FIRST dispatch.
        #: Retries reuse it, so a re-executed chunk sees the same
        #: safety-net budget as the attempt that died (bit-identity of
        #: the recovered run) and the poll count stays a pure function
        #: of the plan.
        self.chunk_remaining: Dict[int, Optional[float]] = {}
        self.retry_queue: deque = deque()
        self.next_fresh = 0  # next never-dispatched chunk, in plan order
        self.limit = self.total  # a quarantine truncates the plan here
        self.polls = 0
        self.expired = False
        self.report = SupervisionReport()

        self.pool: Optional[ProcessPoolExecutor] = None
        self.pending: Dict[Future, int] = {}
        self.started: Dict[Future, float] = {}
        self.metrics = get_metrics()

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        from repro.parallel.pool import _init_worker

        if self.pool is None:
            self.pool = ProcessPoolExecutor(
                max_workers=self.worker_count,
                initializer=_init_worker,
                initargs=(self.payload,),
            )
        return self.pool

    def _abandon_pool(self) -> None:
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = None

    # ------------------------------------------------------------------
    # failure accounting
    # ------------------------------------------------------------------
    def _charge(self, index: int, cause: str) -> None:
        """Record one failed attempt of ``index``; requeue or resolve poison."""
        self.failures[index] += 1
        self.causes.setdefault(index, []).append(cause)
        if self.failures[index] <= self.policy.max_chunk_retries:
            self.report.chunks_retried += 1
            self.metrics.inc("pool.chunks_retried_total")
            self.retry_queue.append(index)
            return
        self._resolve_poison(index)

    def _resolve_poison(self, index: int) -> None:
        causes = tuple(self.causes.get(index, ()))
        if self.policy.on_poison_chunk == "serial":
            try:
                self.results[index] = self._run_inline(index)
            except Exception as exc:
                raise PoisonChunkError(
                    index, self.failures[index], causes + (_summary(exc),)
                ) from exc
            self.report.serial_rescues += 1
            self.metrics.inc("pool.serial_rescues_total")
            return
        if self.policy.on_poison_chunk == "partial":
            self.limit = min(self.limit, index)
            self.report.quarantined.append(index)
            self.metrics.inc("pool.chunks_quarantined_total")
            span = get_tracer().current
            if span is not None:
                span.event(
                    "pool.chunk_quarantined",
                    chunk=index,
                    attempts=self.failures[index],
                )
            return
        raise PoisonChunkError(index, self.failures[index], causes)

    def _run_inline(self, index: int) -> Any:
        """Execute one chunk in the coordinator, on its original budget."""
        remaining = self.chunk_remaining.get(index)
        return self.task(self.payload, *self.chunk_args[index], remaining)

    # ------------------------------------------------------------------
    # dispatch / collect
    # ------------------------------------------------------------------
    def _dispatch_one(self, index: int) -> None:
        planned = planned_process_fault(self.inject_site, index, self.failures[index])
        directive, hang = (None, 0.0) if planned is None else planned
        future = self._ensure_pool().submit(
            _call_supervised,
            self.task,
            (*self.chunk_args[index], self.chunk_remaining[index]),
            directive,
            hang,
        )
        self.pending[future] = index
        self.started[future] = time.monotonic()

    def _fill_window(self) -> None:
        """Dispatch retries first, then fresh chunks in plan order.

        Fresh chunks replicate the serial path's per-chunk schedule
        exactly: one fault probe and one deadline poll, in chunk order,
        before dispatch.  Retries reuse the budget measured at first
        dispatch and are never re-polled.
        """
        while not self.report.serial_fallback and len(self.pending) < self.window:
            if self.retry_queue:
                index = self.retry_queue.popleft()
                if index >= self.limit:
                    continue  # truncated away by an earlier quarantine
            elif not self.expired and self.next_fresh < self.limit:
                index = self.next_fresh
                maybe_inject(self.inject_site)
                self.polls += 1
                remaining = self.budget.poll_remaining()
                if remaining <= 0.0:
                    self.expired = True
                    break
                self.chunk_remaining[index] = (
                    None if self.budget.unbounded else remaining
                )
                self.next_fresh += 1
            else:
                break
            try:
                self._dispatch_one(index)
            except BrokenProcessPool:
                # The pool died between submissions; this chunk never ran,
                # so requeue it uncharged and rebuild.
                self.retry_queue.appendleft(index)
                self._recover(charged={})

    def _collect_done(self, done: Sequence[Future]) -> Set[int]:
        """Fold finished futures into results; return chunks lost to breakage."""
        broken: Set[int] = set()
        for future in done:
            index = self.pending.pop(future)
            self.started.pop(future, None)
            try:
                self.results[index] = future.result()
            except BrokenProcessPool:
                broken.add(index)
            except Exception as exc:  # the chunk task raised in the worker
                self._charge(index, _summary(exc))
        return broken

    # ------------------------------------------------------------------
    # recovery events
    # ------------------------------------------------------------------
    def _recover(self, charged: Dict[int, str]) -> None:
        """Rebuild the pool, salvaging finished futures and requeuing lost ones.

        ``charged`` maps chunk indexes known (or presumed) to have failed
        to a cause line; they are charged one attempt against their retry
        budget.  Other in-flight chunks whose futures cannot yield a
        result are requeued free of charge.
        """
        self.report.pool_restarts += 1
        self.metrics.inc("pool.restarts_total")
        self.metrics.inc("pool.workers_lost_total")
        lost: List[int] = []
        for future, index in list(self.pending.items()):
            if future.done() and not future.cancelled():
                try:
                    self.results[index] = future.result()
                    continue  # finished before the breakage: salvage it
                except Exception:
                    pass
            lost.append(index)
        self.pending.clear()
        self.started.clear()
        self._abandon_pool()
        with get_tracer().span(
            "pool.recovery", restart=self.report.pool_restarts, lost=sorted(lost)
        ):
            for index in sorted(set(lost) | set(charged)):
                if index in charged:
                    self._charge(index, charged[index])
                else:
                    self.retry_queue.append(index)
        if self.report.pool_restarts > self.policy.max_pool_restarts:
            if not self.policy.serial_fallback:
                raise PoolBrokenError(self.report.pool_restarts)
            self.report.serial_fallback = True
            self.metrics.inc("pool.serial_fallback_total")

    def _handle_stragglers(self) -> None:
        """Abandon the pool around chunks that blew the soft timeout."""
        now = time.monotonic()
        timeout = self.policy.chunk_timeout or 0.0
        overdue = {
            index: "straggler: exceeded chunk_timeout"
            for future, index in self.pending.items()
            if not future.done() and now - self.started[future] >= timeout
        }
        if not overdue:
            return
        self.report.stragglers += len(overdue)
        self.metrics.inc("pool.stragglers_total", len(overdue))
        self._recover(charged=overdue)

    # ------------------------------------------------------------------
    # main loops
    # ------------------------------------------------------------------
    def _pooled_loop(self) -> None:
        while not self.report.serial_fallback:
            self._fill_window()
            if not self.pending:
                return  # plan drained (or expired with nothing in flight)
            timeout = None
            if self.policy.chunk_timeout is not None:
                oldest = min(self.started[f] for f in self.pending)
                timeout = max(
                    0.0, oldest + self.policy.chunk_timeout - time.monotonic()
                )
            done, _ = wait(
                set(self.pending), timeout=timeout, return_when=FIRST_COMPLETED
            )
            if done:
                broken = self._collect_done(list(done))
                if broken:
                    self._recover(
                        charged={i: "lost with broken pool" for i in broken}
                    )
            else:
                self._handle_stragglers()

    def _serial_loop(self) -> None:
        """Drain every unresolved chunk inline, in plan order."""
        self.retry_queue.clear()  # the loop below walks the plan directly
        quarantined = set(self.report.quarantined)
        for index in range(self.limit):
            if index in self.results or index in quarantined:
                continue
            if index not in self.chunk_remaining:  # never dispatched
                if self.expired:
                    break
                maybe_inject(self.inject_site)
                self.polls += 1
                remaining = self.budget.poll_remaining()
                if remaining <= 0.0:
                    self.expired = True
                    break
                self.chunk_remaining[index] = (
                    None if self.budget.unbounded else remaining
                )
            self.results[index] = self._run_inline(index)

    def run(self) -> Tuple[List[Any], bool, int]:
        try:
            self._pooled_loop()
            if self.report.serial_fallback:
                self._serial_loop()
        except BaseException:
            self._abandon_pool()
            raise
        else:
            if self.pool is not None:
                self.pool.shutdown(wait=True)
                self.pool = None
        return self._assemble()

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------
    def _assemble(self) -> Tuple[List[Any], bool, int]:
        """Order results and enforce the prefix-closure contract."""
        ordered: List[Any] = []
        truncated = self.expired
        for index in range(self.limit):
            if index not in self.results:
                truncated = True
                break
            ordered.append(self.results[index])
        if self.limit < self.total:
            truncated = True
        if not ordered and self.report.quarantined:
            first = self.report.quarantined[0]
            raise PoisonChunkError(
                first,
                self.failures[first],
                tuple(self.causes.get(first, ())) + ("no salvageable prefix",),
            )
        if not self.report.clean:
            self.metrics.inc("pool.supervised_recoveries_total")
        return ordered, truncated, self.polls


def run_supervised(
    task: Callable[..., Any],
    payload: Any,
    chunk_args: Sequence[Tuple[Any, ...]],
    worker_count: int,
    window: int,
    budget: Deadline,
    inject_site: str,
    policy: SupervisionPolicy,
) -> Tuple[List[Any], bool, int]:
    """Execute a chunk plan on a supervised pool.

    Returns ``(results, truncated, polls)``: the ordered prefix of chunk
    results actually kept, whether the plan was cut short (deadline
    expiry or quarantine — both feed the library's partial-result
    contract), and how many deadline polls were made (folded into the
    coordinator's run metrics by the caller).
    """
    supervisor = _Supervisor(
        task, payload, chunk_args, worker_count, window, budget, inject_site, policy
    )
    return supervisor.run()
