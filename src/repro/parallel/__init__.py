"""Deterministic parallel execution layer.

``repro.parallel`` turns the library's sampling loops — RR-set polling and
Monte-Carlo spread estimation — into pre-partitioned chunk plans executed
either inline or on a process pool, with the guarantee that the worker
count never changes results: same seed, same numbers, whether
``workers=1`` or ``workers=8``.  See :mod:`repro.parallel.pool` for the
mechanism and ``docs/performance.md`` for the user-facing story.

Pooled execution is supervised (:mod:`repro.parallel.supervisor`):
worker crashes, hung chunks and transient chunk failures are recovered
by restarting the pool and re-dispatching only the lost chunks — which
is bit-identical by construction, because each chunk's seed stream is
fixed at planning time.  :class:`SupervisionPolicy` bounds the recovery
budgets; see ``docs/resilience.md`` for the failure-mode table.

Consumers: :func:`repro.rrset.sampler.sample_rr_sets`,
:func:`repro.diffusion.montecarlo.estimate_spread`,
:func:`repro.diffusion.montecarlo.estimate_configuration_spread`, the
batch IC engine, and everything layered on top of them
(:meth:`RRHypergraph.build <repro.rrset.hypergraph.RRHypergraph.build>`,
:func:`~repro.experiments.runner.run_methods`, the CLI ``--workers``
flag).
"""

from repro.parallel.pool import (
    DEFAULT_CHUNK_SIZE,
    MAX_CHUNKS,
    WORKERS_ENV_VAR,
    partition_chunks,
    resolve_workers,
    run_chunks,
)
from repro.parallel.supervisor import (
    SupervisionLike,
    SupervisionPolicy,
    SupervisionReport,
    resolve_supervision,
    run_supervised,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "MAX_CHUNKS",
    "WORKERS_ENV_VAR",
    "partition_chunks",
    "resolve_workers",
    "run_chunks",
    "SupervisionLike",
    "SupervisionPolicy",
    "SupervisionReport",
    "resolve_supervision",
    "run_supervised",
]
