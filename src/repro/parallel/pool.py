"""Deterministic chunked execution over a process pool.

Every embarrassingly-parallel loop in the library — RR-set polling
(Section 8), Monte-Carlo spread estimation (Theorem 2) — is expressed as a
list of *chunks* executed by :func:`run_chunks`.  The design goal is
**bit-reproducible determinism across worker counts**: for a fixed seed,
``workers=1`` and ``workers=8`` produce identical results, because

* the chunk layout (:func:`partition_chunks`) depends only on the total
  work size and the chunk size — never on the worker count;
* chunk ``i`` always consumes child ``i`` of the root
  :class:`~numpy.random.SeedSequence`
  (:func:`repro.utils.rng.spawn_sequences`), so its random stream is fixed
  at planning time; and
* results are collected strictly in chunk order, so floating-point
  reductions (e.g. the Chan merge of per-chunk
  :class:`~repro.utils.stats.RunningStat`\\ s) see the same operand order
  regardless of which worker finished first.

The pool is ``fork``/``spawn``-safe by construction: chunk tasks are
module-level functions, the (potentially large) shared payload travels
once per worker via the pool initializer, and per-chunk messages carry
only a seed sequence and a few scalars.

Runtime integration
-------------------
``run_chunks`` polls the shared :class:`~repro.runtime.Deadline` exactly
once per chunk, *before* dispatching it, in chunk order — identically in
the serial and pooled paths — so deadline truncation happens at a
deterministic chunk boundary under an injectable clock.  Each dispatched
chunk additionally receives the remaining budget measured at dispatch
time; chunk tasks run it down on the worker's own monotonic clock (see
:func:`~repro.runtime.deadline.deadline_iter`) as a real-time safety net,
and the pool simply drains: dispatched chunks finish (possibly truncated)
and their results are kept, preserving the library's partial-result
contract.  A :func:`~repro.runtime.faults.maybe_inject` probe fires at
every chunk boundary so the fault injector can kill a build mid-flight.

Pooled execution is *supervised*: worker crashes, stragglers and
transient chunk failures are absorbed by restarting the pool and
re-dispatching only the lost chunks, which is bit-identical by the chunk
design above.  See :mod:`repro.parallel.supervisor` and the
``supervision`` parameter of :func:`run_chunks`.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.obs.context import get_metrics
from repro.parallel.supervisor import (
    SupervisionLike,
    resolve_supervision,
    run_supervised,
)
from repro.runtime.deadline import DeadlineLike, as_deadline
from repro.runtime.faults import maybe_inject

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "MAX_CHUNKS",
    "WORKERS_ENV_VAR",
    "resolve_workers",
    "partition_chunks",
    "run_chunks",
]

#: Default work items per chunk.  Large enough that inter-process transfer
#: amortizes, small enough that deadline truncation stays responsive and
#: pools load-balance; and *fixed*, because the chunk layout is part of
#: the determinism contract (changing it changes the sampled streams).
DEFAULT_CHUNK_SIZE = 256

#: Environment variable consulted when a caller passes ``workers=None``:
#: lets CI (and users) flip the whole library to N workers without
#: touching every call site.  Results are unaffected by construction.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: At most this many chunks per worker are in flight at once, bounding how
#: much already-dispatched work the pool must drain after deadline expiry.
_INFLIGHT_PER_WORKER = 2


def resolve_workers(workers: Union[int, str, None] = None) -> int:
    """Normalize the ``workers`` argument accepted across the library.

    ``None`` (the default everywhere) consults the ``REPRO_WORKERS``
    environment variable and falls back to 1; ``"auto"`` (as the argument
    or as the env value) means "one per CPU"; any positive integer is
    taken literally.  Zero and negative counts are rejected — a silent
    normalization there has historically masked config bugs — with an
    error naming where the bad value came from (argument vs env var).
    The resolved count never changes *results* — only how the fixed
    chunk plan is executed.

    >>> resolve_workers(1)
    1
    >>> resolve_workers(4)
    4
    """
    source = "workers argument"
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        source = f"{WORKERS_ENV_VAR} environment variable"
        if raw.lower() == "auto":
            workers = "auto"
        else:
            try:
                workers = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"{source} must be a positive integer or 'auto', got {raw!r}"
                ) from None
    if isinstance(workers, str):
        if workers.lower() == "auto":
            return os.cpu_count() or 1
        raise ConfigurationError(
            f"{source} must be a positive integer or 'auto', got {workers!r}"
        )
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigurationError(
            f"{source} must be a positive integer or 'auto', got {workers!r}"
        )
    if workers < 1:
        raise ConfigurationError(
            f"{source} must be >= 1 (or 'auto' for one per CPU), got {workers}"
        )
    return workers


#: Hard ceiling on chunks per plan.  Chunk indices flow into per-chunk
#: seed-sequence spawning, slab file stems and uint32 bookkeeping arrays;
#: a plan wider than this could silently alias indices downstream, so the
#: partitioner refuses it up front.  In practice this bounds theta at
#: ``MAX_CHUNKS * chunk_size`` (~10^12 RR sets at the default size) —
#: far beyond anything a real run requests.
MAX_CHUNKS = (1 << 32) - 1


def partition_chunks(count: int, chunk_size: Optional[int] = None) -> List[int]:
    """Split ``count`` work items into fixed chunk sizes.

    The layout is a pure function of ``(count, chunk_size)`` — the
    foundation of cross-worker determinism.  Every chunk is non-empty
    (no zero-length trailing chunk) and the sizes sum to ``count``
    exactly; plans wider than :data:`MAX_CHUNKS` are rejected rather
    than risking index overflow in downstream bookkeeping.

    >>> partition_chunks(600, 256)
    [256, 256, 88]
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    size = DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size
    if size <= 0:
        raise ConfigurationError(f"chunk_size must be positive, got {size}")
    full, rest = divmod(count, size)
    num_chunks = full + (1 if rest else 0)
    if num_chunks > MAX_CHUNKS:
        raise ConfigurationError(
            f"count={count} at chunk_size={size} needs {num_chunks} chunks, "
            f"exceeding the {MAX_CHUNKS} chunk-index ceiling; "
            "raise chunk_size to keep the plan addressable"
        )
    return [size] * full + ([rest] if rest else [])


# ----------------------------------------------------------------------
# worker-side plumbing (module level: picklable under fork and spawn)
# ----------------------------------------------------------------------

#: Per-worker copy of the shared payload, installed by the pool
#: initializer so it is transferred once per worker instead of once per
#: chunk.
_WORKER_PAYLOAD: Any = None


def _init_worker(payload: Any) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


def run_chunks(
    task: Callable[..., Any],
    payload: Any,
    chunk_args: Sequence[Tuple[Any, ...]],
    workers: Union[int, str, None] = None,
    deadline: DeadlineLike = None,
    inject_site: str = "parallel.chunk",
    supervision: "SupervisionLike" = None,
) -> Tuple[List[Any], bool]:
    """Execute ``task(payload, *args, remaining)`` for each chunk, in order.

    Parameters
    ----------
    task:
        A module-level function (it crosses process boundaries).  Its last
        positional argument is the seconds of deadline budget remaining at
        dispatch time, or ``None`` when unbounded.
    payload:
        Shared read-only inputs (e.g. the diffusion model), shipped to
        each worker once via the pool initializer.
    chunk_args:
        Per-chunk argument tuples, one per chunk, in chunk order.
    workers:
        See :func:`resolve_workers`.  ``1`` executes inline — same code
        path as a worker, so results match by construction.
    deadline:
        Shared run budget.  Polled once per chunk before dispatch; chunks
        not yet dispatched at expiry are dropped.
    inject_site:
        :func:`~repro.runtime.faults.maybe_inject` site name probed at
        each chunk boundary (in the coordinator process).
    supervision:
        Recovery policy of the pooled path — a
        :class:`~repro.parallel.supervisor.SupervisionPolicy`, a dict of
        its fields, or ``None`` for the defaults.  See
        :mod:`repro.parallel.supervisor`; never changes the results of a
        run that completes.

    Returns
    -------
    ``(results, expired)`` — per-chunk results for the dispatched prefix
    (in chunk order), and whether the run was cut short (deadline expiry,
    or a quarantined poison chunk under ``on_poison_chunk="partial"``).
    """
    budget = as_deadline(deadline)
    worker_count = resolve_workers(workers)
    policy = resolve_supervision(supervision)
    results: List[Any] = []
    expired = False
    polls = 0

    if worker_count == 1 or len(chunk_args) <= 1:
        for args in chunk_args:
            maybe_inject(inject_site)
            polls += 1
            remaining = budget.poll_remaining()
            if remaining <= 0.0:
                expired = True
                break
            results.append(
                task(payload, *args, None if budget.unbounded else remaining)
            )
        _record_run(len(results), polls, expired)
        return results, expired

    window = _INFLIGHT_PER_WORKER * worker_count
    results, expired, polls = run_supervised(
        task, payload, chunk_args, worker_count, window, budget, inject_site, policy
    )
    _record_run(len(results), polls, expired)
    return results, expired


def _record_run(dispatched: int, polls: int, expired: bool) -> None:
    """Fold one ``run_chunks`` invocation into the ambient metrics.

    Deliberately records only worker-count-invariant facts: dispatch
    counts and chunk-boundary polls are identical in the serial and
    pooled paths, so these counters share the engine's determinism
    guarantee.  (The resolved worker count is *not* recorded here.)
    """
    metrics = get_metrics()
    metrics.inc("parallel.runs_total")
    metrics.inc("parallel.chunks_total", dispatched)
    metrics.inc("parallel.deadline_polls_total", polls)
    if expired:
        metrics.inc("parallel.deadline_expired_total")
