"""Scaling benchmark for the deterministic parallel engine.

Measures RR-set polling and Monte-Carlo spread throughput on a synthetic
weighted-cascade graph at several worker counts, verifies that every
worker count produced identical output (the engine's headline guarantee),
and writes the whole record to ``BENCH_parallel.json``.  Run it as a
module::

    PYTHONPATH=src python -m repro.parallel.bench --out BENCH_parallel.json
    PYTHONPATH=src python -m repro.parallel.bench --smoke   # tiny CI mode

``docs/performance.md`` documents the JSON schema and how to interpret
the numbers; ``benchmarks/test_parallel_scaling.py`` wraps the same
functions in the pytest-benchmark harness.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.diffusion.independent_cascade import IndependentCascade
from repro.diffusion.montecarlo import estimate_spread
from repro.graphs.generators import erdos_renyi
from repro.graphs.weights import assign_weighted_cascade
from repro.obs.context import observe
from repro.obs.metrics import MetricsRegistry
from repro.parallel.pool import resolve_workers
from repro.rrset.sampler import sample_rr_sets

__all__ = [
    "SCHEMA",
    "build_scaling_model",
    "run_scaling_benchmark",
    "write_report",
    "main",
]

SCHEMA = "repro.parallel.bench/1"

#: Default benchmark shape: big enough that chunk dispatch amortizes and
#: per-core sampling runs for whole seconds; ``--smoke`` shrinks it to a
#: few hundred milliseconds for CI.
FULL = dict(nodes=2000, edge_prob=0.004, rr_sets=20_000, mc_samples=8_000)
SMOKE = dict(nodes=120, edge_prob=0.05, rr_sets=768, mc_samples=768)

SEED = 2016
DEFAULT_WORKERS = (1, 2, 4)


def build_scaling_model(nodes: int, edge_prob: float, seed: int = SEED) -> IndependentCascade:
    """The synthetic scaling graph: Erdős–Rényi + weighted-cascade probs."""
    graph = assign_weighted_cascade(erdos_renyi(nodes, edge_prob, seed=seed), alpha=1.0)
    return IndependentCascade(graph)


def _digest_rr(rr_sets: Sequence[np.ndarray]) -> str:
    """Order-sensitive content hash of a sampled hyper-graph."""
    hasher = hashlib.sha256()
    for rr in rr_sets:
        hasher.update(np.ascontiguousarray(rr, dtype=np.int64).tobytes())
        hasher.update(b"|")
    return hasher.hexdigest()


def _best_of(repeats: int, fn) -> tuple:
    """Run ``fn`` ``repeats`` times; return (min seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_scaling_benchmark(
    nodes: int,
    edge_prob: float,
    rr_sets: int,
    mc_samples: int,
    workers: Sequence[int] = DEFAULT_WORKERS,
    repeats: int = 3,
    seed: int = SEED,
) -> Dict:
    """Measure sets/sec and samples/sec at each worker count.

    Returns the full ``BENCH_parallel.json`` payload (minus the file).
    Both workloads reuse one seed, so the determinism cross-check —
    identical RR digest and identical spread estimate at every worker
    count — doubles as an end-to-end test of the engine.
    """
    model = build_scaling_model(nodes, edge_prob, seed=seed)
    mc_seeds = list(range(min(5, nodes)))

    # Run-wide observability totals (across every worker count and repeat);
    # a private registry keeps earlier activity in the process out of the
    # report, while ``observe`` still merges the totals up on exit.
    registry = MetricsRegistry()
    rr_rows: List[Dict] = []
    spread_rows: List[Dict] = []
    rr_digests: List[str] = []
    spread_keys: List[tuple] = []
    with observe(metrics=registry):
        for count in workers:
            seconds, sampled = _best_of(
                repeats,
                lambda w=count: sample_rr_sets(model, rr_sets, seed=seed, workers=w),
            )
            rr_digests.append(_digest_rr(sampled))
            rr_rows.append(
                {
                    "workers": resolve_workers(count),
                    "seconds": seconds,
                    "sets_per_sec": rr_sets / seconds,
                }
            )
            seconds, estimate = _best_of(
                repeats,
                lambda w=count: estimate_spread(
                    model, mc_seeds, num_samples=mc_samples, seed=seed, workers=w
                ),
            )
            spread_keys.append((estimate.mean, estimate.stddev, estimate.num_samples))
            spread_rows.append(
                {
                    "workers": resolve_workers(count),
                    "seconds": seconds,
                    "samples_per_sec": mc_samples / seconds,
                }
            )

    for rows, rate in ((rr_rows, "sets_per_sec"), (spread_rows, "samples_per_sec")):
        base = rows[0][rate]
        for row in rows:
            row["speedup"] = row[rate] / base

    return {
        "schema": SCHEMA,
        "config": {
            "nodes": nodes,
            "edge_prob": edge_prob,
            "rr_sets": rr_sets,
            "mc_samples": mc_samples,
            "seed": seed,
            "repeats": repeats,
            "workers": [resolve_workers(w) for w in workers],
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "results": {"rr_sets": rr_rows, "spread": spread_rows},
        "metrics": registry.snapshot(),
        "determinism": {
            "rr_digest": rr_digests[0],
            "rr_identical": len(set(rr_digests)) == 1,
            "spread_identical": len(set(spread_keys)) == 1,
        },
    }


def write_report(report: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_report(report: Dict) -> str:
    """Human-readable table of a benchmark payload."""
    cfg, det = report["config"], report["determinism"]
    lines = [
        f"parallel scaling — n={cfg['nodes']} p={cfg['edge_prob']:g} "
        f"theta={cfg['rr_sets']} mc={cfg['mc_samples']} "
        f"(cpus={report['machine']['cpu_count']})",
        f"{'workers':>8s} {'rr sets/s':>12s} {'speedup':>8s} "
        f"{'mc samp/s':>12s} {'speedup':>8s}",
    ]
    for rr, sp in zip(report["results"]["rr_sets"], report["results"]["spread"]):
        lines.append(
            f"{rr['workers']:8d} {rr['sets_per_sec']:12,.0f} {rr['speedup']:7.2f}x "
            f"{sp['samples_per_sec']:12,.0f} {sp['speedup']:7.2f}x"
        )
    lines.append(
        "determinism: rr_identical=%s spread_identical=%s"
        % (det["rr_identical"], det["spread_identical"])
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.bench",
        description="Benchmark the deterministic parallel sampling engine.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny graph / few samples: a CI-speed sanity run",
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--edge-prob", type=float, default=None)
    parser.add_argument("--rr-sets", type=int, default=None)
    parser.add_argument("--mc-samples", type=int, default=None)
    parser.add_argument(
        "--workers",
        default=",".join(str(w) for w in DEFAULT_WORKERS),
        help="comma-separated worker counts to sweep (default %(default)s)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--out",
        default="BENCH_parallel.json",
        metavar="PATH",
        help="where to write the JSON report (default %(default)s)",
    )
    args = parser.parse_args(argv)

    shape = dict(SMOKE if args.smoke else FULL)
    for key, value in (
        ("nodes", args.nodes),
        ("edge_prob", args.edge_prob),
        ("rr_sets", args.rr_sets),
        ("mc_samples", args.mc_samples),
    ):
        if value is not None:
            shape[key] = value
    workers = tuple(int(w) for w in str(args.workers).split(",") if w.strip())

    report = run_scaling_benchmark(
        workers=workers,
        repeats=1 if args.smoke else args.repeats,
        seed=args.seed,
        **shape,
    )
    write_report(report, args.out)
    print(format_report(report))
    print(f"wrote {args.out}")
    if not (report["determinism"]["rr_identical"] and report["determinism"]["spread_identical"]):
        print("ERROR: output diverged across worker counts", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
