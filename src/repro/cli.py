"""Command-line interface.

Five subcommands cover the library's end-to-end workflow without writing
Python::

    repro-cim generate --model powerlaw --nodes 500 --alpha 1.0 -o net.txt
    repro-cim inspect net.txt
    repro-cim solve net.txt --method cd --budget 10 -o plan.json
    repro-cim evaluate net.txt plan.json --samples 5000
    repro-cim reproduce fig5 --scale 0.02

``generate`` writes a SNAP-style edge list (probabilities included);
``solve`` assigns the paper's curve mixture (fractions configurable),
runs one solver and saves the resulting plan as JSON; ``evaluate`` scores
a saved plan with independent Monte-Carlo simulations; ``reproduce``
regenerates one paper exhibit.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Optional, Sequence

from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def _worker_count(text: str):
    """argparse type for --workers: a positive int, or 'auto' (one per CPU)."""
    if text.strip().lower() == "auto":
        return "auto"
    try:
        workers = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer or 'auto': {text!r}")
    if workers < 1:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 1 (or 'auto' for one per CPU), got {text}"
        )
    return workers


def _add_workers_argument(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--workers",
        type=_worker_count,
        default=None,
        metavar="N|auto",
        help="parallel sampling processes (default 1, 'auto' = one per CPU); "
        "results are identical for every worker count",
    )


def _chunk_retries(text: str) -> int:
    """argparse type for --max-chunk-retries: a non-negative int."""
    try:
        retries = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if retries < 0:
        raise argparse.ArgumentTypeError(f"retries must be >= 0, got {text}")
    return retries


def _chunk_timeout(text: str) -> float:
    """argparse type for --chunk-timeout: a positive second count."""
    try:
        seconds = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if math.isnan(seconds) or seconds <= 0:
        raise argparse.ArgumentTypeError(
            f"chunk timeout must be a positive number of seconds, got {text}"
        )
    return seconds


def _add_supervision_arguments(subparser: argparse.ArgumentParser) -> None:
    """Worker-pool recovery knobs (see repro.parallel.supervisor)."""
    subparser.add_argument(
        "--max-chunk-retries",
        type=_chunk_retries,
        default=None,
        metavar="N",
        help="re-dispatches granted to a failing work chunk before it is "
        "declared poison (default 2); re-execution is bit-identical",
    )
    subparser.add_argument(
        "--chunk-timeout",
        type=_chunk_timeout,
        default=None,
        metavar="SECONDS",
        help="soft per-chunk deadline; an overdue chunk is treated as a "
        "straggler and re-dispatched on a fresh pool (default: none)",
    )
    subparser.add_argument(
        "--on-poison-chunk",
        choices=("fail", "partial", "serial"),
        default=None,
        help="poison-chunk policy: 'fail' raises, 'partial' quarantines the "
        "chunk and returns a truncated (still deterministic) prefix, "
        "'serial' re-runs the chunk inline in the parent (default: fail)",
    )


def _supervision_from_args(args) -> Optional[dict]:
    """Collect the supervision flags the user actually set (None = defaults)."""
    policy = {}
    if getattr(args, "max_chunk_retries", None) is not None:
        policy["max_chunk_retries"] = args.max_chunk_retries
    if getattr(args, "chunk_timeout", None) is not None:
        policy["chunk_timeout"] = args.chunk_timeout
    if getattr(args, "on_poison_chunk", None) is not None:
        policy["on_poison_chunk"] = args.on_poison_chunk
    return policy or None


def _add_obs_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSONL trace of nested spans (sampling, solver phases, "
        "runtime hooks) to FILE; span content is identical at any --workers",
    )
    subparser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a JSON snapshot of run counters/gauges/histograms to FILE",
    )


def _user_cap(text: str) -> float:
    """argparse type for --user-cap: a discount cap in [0, 1]."""
    try:
        cap = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if math.isnan(cap) or not 0.0 <= cap <= 1.0:
        raise argparse.ArgumentTypeError(f"user cap must lie in [0, 1], got {text}")
    return cap


def _access_k(text: str) -> int:
    """argparse type for --access-k: a positive user count."""
    try:
        k = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if k < 1:
        raise argparse.ArgumentTypeError(f"access k must be >= 1, got {text}")
    return k


def _add_constraint_arguments(subparser: argparse.ArgumentParser) -> None:
    """Constrained-scenario flags (see docs/constraints.md)."""
    subparser.add_argument(
        "--access-k",
        type=_access_k,
        default=None,
        metavar="K",
        help="limited access: only the K most promising users (spillover-"
        "aware selection) may be offered discounts",
    )
    subparser.add_argument(
        "--user-cap",
        type=_user_cap,
        default=None,
        metavar="CAP",
        help="partial incentives: no user's discount may exceed CAP in [0, 1]",
    )
    subparser.add_argument(
        "--constraint-json",
        default=None,
        metavar="JSON|FILE",
        help="constraint spec as inline JSON or a path to a JSON file, e.g. "
        '\'[{"type": "cap", "cap": 0.5}, {"type": "topk", "k": 20}]\'; '
        "composes (intersects) with --access-k / --user-cap",
    )


def _constraints_from_args(args) -> Optional[list]:
    """Build the constraint list selected by the CLI flags (None = none)."""
    from repro.core.constraints import (
        PerUserCap,
        TopKAccess,
        constraints_from_spec,
    )

    parts = []
    if getattr(args, "access_k", None) is not None:
        parts.append(TopKAccess(args.access_k))
    if getattr(args, "user_cap", None) is not None:
        parts.append(PerUserCap(args.user_cap))
    raw = getattr(args, "constraint_json", None)
    if raw is not None:
        import json
        from pathlib import Path

        from repro.exceptions import ConstraintError

        text = raw
        path = Path(raw)
        try:
            if path.is_file():
                text = path.read_text(encoding="utf-8")
        except OSError:
            pass
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConstraintError(
                f"--constraint-json is neither valid JSON nor a readable "
                f"JSON file: {exc}"
            ) from None
        parts.extend(constraints_from_spec(spec))
    return parts or None


def _deadline_seconds(text: str) -> float:
    """argparse type for --deadline: a finite, non-negative second count."""
    try:
        seconds = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if math.isnan(seconds) or seconds < 0:
        raise argparse.ArgumentTypeError(
            f"deadline must be a non-negative number of seconds, got {text}"
        )
    return seconds


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-cim",
        description="Continuous influence maximization (SIGMOD 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic network")
    gen.add_argument(
        "--model",
        choices=("erdos-renyi", "powerlaw", "barabasi-albert", "forest-fire"),
        default="powerlaw",
    )
    gen.add_argument("--nodes", type=int, default=500)
    gen.add_argument("--average-degree", type=float, default=10.0)
    gen.add_argument("--edge-prob", type=float, default=0.02, help="erdos-renyi p")
    gen.add_argument("--attach", type=int, default=3, help="barabasi-albert m")
    gen.add_argument("--alpha", type=float, default=1.0, help="weighted-cascade alpha")
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("-o", "--output", required=True)

    insp = sub.add_parser("inspect", help="print statistics of an edge list")
    insp.add_argument("graph")
    insp.add_argument("--undirected", action="store_true")

    slv = sub.add_parser("solve", help="compute a discount plan")
    slv.add_argument("graph")
    slv.add_argument("--method", default="cd")
    slv.add_argument("--budget", type=float, required=True)
    slv.add_argument("--sensitive", type=float, default=0.85)
    slv.add_argument("--linear", type=float, default=0.10)
    slv.add_argument("--insensitive", type=float, default=0.05)
    slv.add_argument("--hyperedges", type=int, default=None)
    slv.add_argument(
        "--rr-sets",
        default=None,
        metavar="N|auto",
        help="hyper-edge count: an integer for a fixed-size build, or "
        "'auto' for adaptive doubling that stops once the estimate is "
        "certified (overrides --hyperedges)",
    )
    slv.add_argument(
        "--rr-epsilon",
        type=float,
        default=0.05,
        help="relative-error target of the --rr-sets auto certificate",
    )
    slv.add_argument(
        "--step-size",
        type=float,
        default=None,
        metavar="ETA",
        help="initial ascent step of --method gradient (Armijo-backtracked)",
    )
    slv.add_argument(
        "--max-steps",
        type=int,
        default=None,
        help="iteration cap of --method gradient/fw",
    )
    slv.add_argument(
        "--solver-tolerance",
        type=float,
        default=None,
        metavar="TOL",
        help="stopping tolerance of --method gradient/fw (gain, gap and "
        "certified duality-gap threshold)",
    )
    slv.add_argument("--diffusion", choices=("ic", "lt"), default="ic")
    slv.add_argument("--undirected", action="store_true")
    slv.add_argument("--seed", type=int, default=None)
    slv.add_argument(
        "--deadline",
        type=_deadline_seconds,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; on expiry the best feasible partial plan "
        "found so far is returned (marked partial) instead of failing",
    )
    slv.add_argument(
        "--storage",
        choices=("heap", "shared"),
        default=None,
        help="RR-set transport for the hyper-graph build: 'heap' pickles "
        "sampled chunks back through the worker pool (default), 'shared' "
        "writes them into memory-mapped slabs (bit-identical, near-zero "
        "pickling; see docs/performance.md)",
    )
    slv.add_argument(
        "--slab-dir",
        default=None,
        metavar="DIR",
        help="slab root for --storage shared (default: $REPRO_SLAB_DIR, "
        "else /dev/shm, else the system temp dir)",
    )
    slv.add_argument(
        "--backing",
        choices=("heap", "mmap"),
        default=None,
        help="where the assembled hyper-graph CSR lives: 'heap' (default) "
        "or 'mmap' — disk-backed spill files, keeping coordinator RSS "
        "independent of theta (requires --storage shared; bit-identical "
        "results; see docs/performance.md)",
    )
    slv.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="spill root for --backing mmap (default: $REPRO_SPILL_DIR, "
        "else the system temp dir — unlike --slab-dir, never /dev/shm: "
        "spill exists to stay off RAM)",
    )
    _add_workers_argument(slv)
    _add_supervision_arguments(slv)
    _add_constraint_arguments(slv)
    _add_obs_arguments(slv)
    slv.add_argument("-o", "--output", default=None, help="save plan JSON here")

    ev = sub.add_parser("evaluate", help="Monte-Carlo score a saved plan")
    ev.add_argument("graph")
    ev.add_argument("plan", help="plan JSON from `solve` (SolveResult or Configuration)")
    ev.add_argument("--samples", type=int, default=2000)
    ev.add_argument("--sensitive", type=float, default=0.85)
    ev.add_argument("--linear", type=float, default=0.10)
    ev.add_argument("--insensitive", type=float, default=0.05)
    ev.add_argument("--diffusion", choices=("ic", "lt"), default="ic")
    ev.add_argument("--undirected", action="store_true")
    ev.add_argument("--seed", type=int, default=None)
    _add_workers_argument(ev)
    _add_obs_arguments(ev)

    sub.add_parser("selfcheck", help="verify the installation's internal consistency")

    rpt = sub.add_parser("report", help="regenerate every exhibit into CSV files")
    rpt.add_argument("output_dir")
    rpt.add_argument("--dataset", default="wiki-vote")
    rpt.add_argument("--scale", type=float, default=0.02)
    rpt.add_argument("--hyperedges", type=int, default=6000)
    rpt.add_argument("--samples", type=int, default=1000)
    rpt.add_argument("--seed", type=int, default=2016)
    rpt.add_argument(
        "--checkpoint-dir",
        default=None,
        help="snapshot each completed experiment cell here (atomic JSON/NPZ)",
    )
    rpt.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed cells found in --checkpoint-dir instead of recomputing",
    )
    _add_workers_argument(rpt)
    _add_supervision_arguments(rpt)
    _add_obs_arguments(rpt)

    rep = sub.add_parser("reproduce", help="regenerate a paper exhibit")
    rep.add_argument(
        "exhibit",
        choices=("table2", "fig3", "fig4", "fig5", "fig6", "table3", "table4"),
    )
    rep.add_argument("--dataset", default="wiki-vote")
    rep.add_argument("--alpha", type=float, default=1.0)
    rep.add_argument("--scale", type=float, default=0.02)
    rep.add_argument("--budget", type=float, default=20.0)
    rep.add_argument("--seed", type=int, default=2016)

    return parser


def _load_graph(path: str, undirected: bool):
    from repro.graphs.io import read_edge_list

    graph, _ = read_edge_list(path, undirected=undirected)
    return graph


def _build_model(graph, diffusion: str):
    from repro.diffusion.independent_cascade import IndependentCascade
    from repro.diffusion.linear_threshold import LinearThreshold

    if diffusion == "lt":
        return LinearThreshold(graph)
    return IndependentCascade(graph)


def _build_population(num_nodes: int, args) -> "object":
    from repro.core.population import paper_mixture

    return paper_mixture(
        num_nodes,
        sensitive_fraction=args.sensitive,
        linear_fraction=args.linear,
        insensitive_fraction=args.insensitive,
        seed=args.seed,
    )


def _cmd_generate(args) -> int:
    from repro.graphs.generators import (
        barabasi_albert,
        erdos_renyi,
        forest_fire,
        powerlaw_configuration,
    )
    from repro.graphs.io import write_edge_list
    from repro.graphs.weights import assign_weighted_cascade

    if args.model == "erdos-renyi":
        graph = erdos_renyi(args.nodes, args.edge_prob, seed=args.seed)
    elif args.model == "barabasi-albert":
        graph = barabasi_albert(args.nodes, args.attach, seed=args.seed)
    elif args.model == "forest-fire":
        graph = forest_fire(args.nodes, seed=args.seed)
    else:
        graph = powerlaw_configuration(
            args.nodes, average_degree=args.average_degree, seed=args.seed
        )
    graph = assign_weighted_cascade(graph, alpha=args.alpha)
    write_edge_list(graph, args.output, header=f"generated by repro-cim ({args.model})")
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.output}")
    return 0


def _cmd_inspect(args) -> int:
    from repro.graphs.stats import describe

    graph = _load_graph(args.graph, args.undirected)
    stats = describe(graph)
    print(stats.as_row())
    print(
        f"max out-degree {stats.max_out_degree}, max in-degree {stats.max_in_degree}, "
        f"isolated {stats.num_isolated}"
    )
    return 0


def _cmd_solve(args) -> int:
    from repro.core.problem import CIMProblem
    from repro.core.solvers import solve
    from repro.io.serialization import save_solve_result

    graph = _load_graph(args.graph, args.undirected)
    model = _build_model(graph, args.diffusion)
    population = _build_population(graph.num_nodes, args)
    problem = CIMProblem(model, population, budget=args.budget)
    num_hyperedges = args.hyperedges
    options = {}
    if args.step_size is not None:
        options["step_size"] = args.step_size
    if args.max_steps is not None:
        options["max_steps"] = args.max_steps
    if args.solver_tolerance is not None:
        options["tolerance"] = args.solver_tolerance
    if args.rr_sets is not None:
        if args.rr_sets == "auto":
            num_hyperedges = "auto"
            options["adaptive"] = {"epsilon": args.rr_epsilon}
        else:
            try:
                num_hyperedges = int(args.rr_sets)
            except ValueError:
                print(f"--rr-sets must be an integer or 'auto', got {args.rr_sets!r}")
                return 2
    result = solve(
        problem,
        args.method,
        num_hyperedges=num_hyperedges,
        seed=args.seed,
        deadline=args.deadline,
        workers=args.workers,
        supervision=_supervision_from_args(args),
        constraints=_constraints_from_args(args),
        storage=args.storage,
        slab_dir=args.slab_dir,
        backing=args.backing,
        spill_dir=args.spill_dir,
        **options,
    )
    support = result.configuration.support
    partial = " [PARTIAL: deadline hit]" if result.extras.get("partial") else ""
    print(
        f"{args.method}: estimated spread {result.spread_estimate:.2f}, "
        f"{support.size} users targeted, spend {result.cost:.3f} / {args.budget:g}"
        f"{partial}"
    )
    active = result.extras.get("constraints")
    if active:
        kinds = ", ".join(part["type"] for part in active)
        print(f"constraints active: {kinds} (solution verified feasible)")
    adaptive = result.extras.get("adaptive")
    if adaptive:
        print(
            f"adaptive sampling: theta {adaptive['theta']}, "
            f"stopped on {adaptive['stop_reason']} "
            f"(epsilon bound {adaptive['epsilon_bound']:.3f}, "
            f"{len(adaptive['stages'])} stages)"
        )
    if args.output:
        save_solve_result(result, args.output)
        print(f"plan saved to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    from pathlib import Path

    from repro.core.problem import CIMProblem
    from repro.exceptions import ConfigurationError
    from repro.io.serialization import configuration_from_json, solve_result_from_json

    graph = _load_graph(args.graph, args.undirected)
    model = _build_model(graph, args.diffusion)
    population = _build_population(graph.num_nodes, args)
    text = Path(args.plan).read_text(encoding="utf-8")
    try:
        configuration = solve_result_from_json(text).configuration
    except ConfigurationError:
        configuration = configuration_from_json(text)
    problem = CIMProblem(model, population, budget=max(configuration.cost, 1e-9))
    estimate = problem.evaluate(
        configuration, num_samples=args.samples, seed=args.seed, workers=args.workers
    )
    lo, hi = estimate.confidence_interval()
    print(
        f"spread {estimate.mean:.2f} ± {estimate.stddev:.2f} "
        f"(95% CI [{lo:.2f}, {hi:.2f}], {args.samples} simulations)"
    )
    return 0


def _cmd_reproduce(args) -> int:
    from repro.experiments import (
        figure3_influence_spread,
        figure4_approximation_bound,
        figure5_spread_vs_discount,
        figure6_running_time,
        table2_rows,
        table3_search_step,
        table4_sensitivity,
    )

    common = dict(dataset=args.dataset, scale=args.scale, seed=args.seed, verbose=True)
    if args.exhibit == "table2":
        for row in table2_rows(scale=args.scale, seed=args.seed):
            print(
                f"{row['network']:>16s}  paper n={row['paper_n']:,}  "
                f"ours n={row['analogue_n']:,} m={row['analogue_m']:,}"
            )
    elif args.exhibit == "fig3":
        from repro.experiments.ascii import multi_series_chart

        rows = figure3_influence_spread(alpha=args.alpha, **common)
        budgets = sorted({row.budget for row in rows})
        series = {
            method: [
                next(r.spread_mean for r in rows if r.budget == b and r.method == method)
                for b in budgets
            ]
            for method in ("im", "ud", "cd")
        }
        print()
        print(multi_series_chart(budgets, series))
    elif args.exhibit == "fig4":
        figure4_approximation_bound(alpha=args.alpha, **common)
    elif args.exhibit == "fig5":
        from repro.experiments.ascii import sparkline

        rows = figure5_spread_vs_discount(alpha=args.alpha, budget=args.budget, **common)
        print(f"\n  spread vs c:  {sparkline([row['spread'] for row in rows])}")
    elif args.exhibit == "fig6":
        figure6_running_time(alpha=args.alpha, **common)
    elif args.exhibit == "table3":
        table3_search_step(alpha=args.alpha, **common)
    elif args.exhibit == "table4":
        table4_sensitivity(alpha=args.alpha, budget=args.budget, **common)
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import generate_full_report

    written = generate_full_report(
        args.output_dir,
        dataset=args.dataset,
        scale=args.scale,
        num_hyperedges=args.hyperedges,
        evaluation_samples=args.samples,
        seed=args.seed,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        workers=args.workers,
        supervision=_supervision_from_args(args),
    )
    for name, path in sorted(written.items()):
        print(f"  {name}: {path}")
    print(f"report written to {args.output_dir}")
    return 0


def _cmd_selfcheck(args) -> int:
    from repro.selfcheck import run_selfcheck

    results = run_selfcheck(verbose=True)
    return 0 if all(result.passed for result in results) else 1


_COMMANDS = {
    "generate": _cmd_generate,
    "inspect": _cmd_inspect,
    "solve": _cmd_solve,
    "evaluate": _cmd_evaluate,
    "reproduce": _cmd_reproduce,
    "selfcheck": _cmd_selfcheck,
    "report": _cmd_report,
}


def _run_observed(args) -> int:
    """Run the selected command, honouring ``--trace`` / ``--metrics-out``.

    Both files are written even when the command fails partway, so an
    aborted run still leaves its partial trace behind for diagnosis.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    if trace_path is None and metrics_path is None:
        return _COMMANDS[args.command](args)

    from repro.obs import MetricsRegistry, Tracer, observe

    tracer = Tracer() if trace_path is not None else None
    metrics = MetricsRegistry() if metrics_path is not None else None
    try:
        with observe(tracer=tracer, metrics=metrics):
            return _COMMANDS[args.command](args)
    finally:
        if tracer is not None:
            tracer.export_jsonl(trace_path)
        if metrics is not None:
            metrics.export_json(metrics_path)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_observed(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
