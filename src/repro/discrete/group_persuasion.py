"""Group persuasion — the paper's closest prior work (Eftekhar et al.).

Section 2: "Eftekhar et al. assumed that the probability that a user is
persuaded to be a seed user is given and *fixed*, if she/he is targeted.
A more realistic strategy is that we can adjust the resource spent on a
specific individual ... which is the subject studied in this paper."

This module implements that predecessor as a baseline: users are
partitioned into groups (demographics, communities, ad segments); the
marketer picks *groups* to target; every member of a targeted group
independently becomes a seed with a fixed, exogenous probability.  The
expected spread is the usual probabilistic-seed objective, estimated on
the RR hyper-graph, and is monotone submodular in the set of targeted
groups (the group objective is a coarsening of Theorem 8's), so lazy
greedy applies.

Comparing this baseline against UD/CD quantifies exactly what the paper's
generalization buys: the freedom to *choose* the persuasion probability
via the discount.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import SolverError
from repro.rrset.hypergraph import RRHypergraph

__all__ = ["GroupPersuasionResult", "group_persuasion"]


@dataclass
class GroupPersuasionResult:
    """Outcome of group-persuasion targeting."""

    groups: List[int]
    targeted_nodes: np.ndarray
    covered: float
    spread_estimate: float
    total_cost: float
    gains: List[float] = field(default_factory=list)


def group_persuasion(
    hypergraph: RRHypergraph,
    groups: Sequence[Sequence[int]],
    persuasion_probabilities: np.ndarray,
    budget: float,
    group_costs: Sequence[float] | None = None,
) -> GroupPersuasionResult:
    """Greedy group targeting under a budget.

    Parameters
    ----------
    hypergraph:
        The RR hyper-graph.
    groups:
        Partition (or any disjoint cover) of node ids into target groups.
    persuasion_probabilities:
        Per-node *fixed* seed probability if the node's group is targeted.
    budget:
        Total targeting budget.
    group_costs:
        Cost of targeting each group; defaults to the group's size
        (one ad impression per member).

    Lazy greedy adds the affordable group with the best marginal coverage
    gain until the budget is exhausted.
    """
    probs = np.asarray(persuasion_probabilities, dtype=np.float64)
    if probs.shape != (hypergraph.num_nodes,):
        raise SolverError(
            f"persuasion_probabilities must have length n={hypergraph.num_nodes}"
        )
    if np.any(probs < 0.0) or np.any(probs > 1.0):
        raise SolverError("persuasion probabilities must lie in [0, 1]")
    if budget <= 0.0:
        raise SolverError(f"budget must be positive, got {budget}")

    group_arrays: List[np.ndarray] = []
    seen: set[int] = set()
    for index, members in enumerate(groups):
        arr = np.unique(np.asarray(list(members), dtype=np.int64))
        if arr.size == 0:
            raise SolverError(f"group {index} is empty")
        if arr[0] < 0 or arr[-1] >= hypergraph.num_nodes:
            raise SolverError(f"group {index} contains out-of-range node")
        overlap = seen.intersection(arr.tolist())
        if overlap:
            raise SolverError(f"groups overlap on nodes {sorted(overlap)[:5]}")
        seen.update(arr.tolist())
        group_arrays.append(arr)

    if group_costs is None:
        costs = np.asarray([float(arr.size) for arr in group_arrays])
    else:
        costs = np.asarray(list(group_costs), dtype=np.float64)
        if costs.shape != (len(group_arrays),):
            raise SolverError("group_costs must match the number of groups")
        if np.any(costs <= 0.0):
            raise SolverError("group costs must be positive")

    survival = np.ones(hypergraph.num_hyperedges, dtype=np.float64)

    def gain_of(group_index: int) -> float:
        total = 0.0
        trial = {}
        for node in group_arrays[group_index]:
            q = probs[node]
            if q <= 0.0:
                continue
            for edge in hypergraph.incident_edges(int(node)):
                trial[edge] = trial.get(edge, survival[edge]) * (1.0 - q)
        for edge, new_survival in trial.items():
            total += survival[edge] - new_survival
        return total

    heap = [
        (-gain_of(g), -1, g)
        for g in range(len(group_arrays))
        if costs[g] <= budget
    ]
    heapq.heapify(heap)
    chosen: List[int] = []
    gains: List[float] = []
    spent = 0.0
    round_index = 0
    taken = np.zeros(len(group_arrays), dtype=bool)
    while heap:
        neg_gain, stamp, group_index = heapq.heappop(heap)
        if taken[group_index] or spent + costs[group_index] > budget + 1e-12:
            continue
        if stamp != round_index:
            heapq.heappush(heap, (-gain_of(group_index), round_index, group_index))
            continue
        if -neg_gain <= 0.0:
            break
        chosen.append(group_index)
        gains.append(-neg_gain)
        taken[group_index] = True
        spent += float(costs[group_index])
        for node in group_arrays[group_index]:
            q = probs[node]
            if q > 0.0:
                survival[hypergraph.incident_edges(int(node))] *= 1.0 - q
        round_index += 1

    covered = float((1.0 - survival).sum())
    theta = max(hypergraph.num_hyperedges, 1)
    targeted = (
        np.concatenate([group_arrays[g] for g in chosen])
        if chosen
        else np.empty(0, dtype=np.int64)
    )
    return GroupPersuasionResult(
        groups=chosen,
        targeted_nodes=targeted,
        covered=covered,
        spread_estimate=hypergraph.num_nodes * covered / theta,
        total_cost=spent,
        gains=gains,
    )
