"""Classic Monte-Carlo CELF greedy (Kempe et al. 2003; Leskovec et al. 2007).

Kept as a second, independent discrete-IM implementation: it estimates
marginal gains with forward cascade simulations instead of RR sets, so
tests can cross-validate the two on small graphs.  The lazy (CELF) queue is
sound because ``I(S)`` is monotone and submodular for triggering models.
"""

from __future__ import annotations

import heapq
from typing import List

from repro.diffusion.base import DiffusionModel
from repro.diffusion.montecarlo import estimate_spread
from repro.exceptions import SolverError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["celf_greedy"]


def celf_greedy(
    model: DiffusionModel,
    k: int,
    num_samples: int = 500,
    seed: SeedLike = None,
) -> List[int]:
    """Greedy seed selection with CELF lazy evaluation.

    Parameters
    ----------
    model:
        Any diffusion model.
    k:
        Seed budget (clamped to ``n``).
    num_samples:
        Monte-Carlo samples per marginal-gain evaluation.  Sampling noise
        can perturb selections on near-ties; increase for tighter greedy.
    """
    if k < 0:
        raise SolverError(f"k must be non-negative, got {k}")
    rng = as_generator(seed)
    n = model.num_nodes
    k = min(k, n)

    def spread_of(seeds: List[int]) -> float:
        if not seeds:
            return 0.0
        return estimate_spread(model, seeds, num_samples=num_samples, seed=rng).mean

    current: List[int] = []
    current_spread = 0.0
    # (-marginal_gain, stale_round, node)
    heap = [(-spread_of([u]), 0, u) for u in range(n)]
    heapq.heapify(heap)
    round_index = 0
    while len(current) < k and heap:
        neg_gain, stamp, node = heapq.heappop(heap)
        if stamp != round_index:
            fresh = spread_of(current + [node]) - current_spread
            heapq.heappush(heap, (-fresh, round_index, node))
            continue
        current.append(node)
        current_spread += -neg_gain
        round_index += 1
    return current
