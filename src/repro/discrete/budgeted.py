"""Budgeted influence maximization (related-work baseline).

The paper's Section 2 discusses the *budgeted* IM line of work ([25, 19]
there): every user ``u`` has a threshold cost ``cost_u`` a company must
pay to turn them into a seed, and the seed set's total cost is capped by
the budget.  CIM generalizes this — a threshold cost is the special case
of a step-like seed-probability curve — so the baseline is included for
comparison and tests.

Algorithm: the classic Khuller–Moss–Naor treatment of budgeted maximum
coverage, adapted to RR sets.  Greedy by *gain per unit cost* alone can be
arbitrarily bad; taking the better of (a) the cost-effectiveness greedy
and (b) the best single affordable node restores a constant-factor
guarantee (``(1 - 1/sqrt(e))`` for this simple variant).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.exceptions import SolverError
from repro.rrset.hypergraph import RRHypergraph

__all__ = ["BudgetedIMResult", "budgeted_max_coverage"]


@dataclass(frozen=True)
class BudgetedIMResult:
    """Outcome of budgeted IM seed selection."""

    seeds: List[int]
    total_cost: float
    covered: float
    spread_estimate: float
    picked_single_best: bool


def _greedy_by_cost_effectiveness(
    hypergraph: RRHypergraph, costs: np.ndarray, budget: float
) -> tuple:
    """Lazy greedy by marginal-coverage / cost, within the budget."""
    survival = np.ones(hypergraph.num_hyperedges, dtype=np.float64)

    def gain_of(node: int) -> float:
        edges = hypergraph.incident_edges(node)
        return float(survival[edges].sum()) if edges.size else 0.0

    heap = [
        (-gain_of(u) / costs[u], -1, u)
        for u in range(hypergraph.num_nodes)
        if costs[u] <= budget
    ]
    heapq.heapify(heap)
    selected: List[int] = []
    spent = 0.0
    round_index = 0
    taken = np.zeros(hypergraph.num_nodes, dtype=bool)
    while heap:
        neg_ratio, stamp, node = heapq.heappop(heap)
        if taken[node] or spent + costs[node] > budget + 1e-12:
            continue
        if stamp != round_index:
            heapq.heappush(heap, (-gain_of(node) / costs[node], round_index, node))
            continue
        if -neg_ratio <= 0.0:
            break
        selected.append(node)
        taken[node] = True
        spent += float(costs[node])
        survival[hypergraph.incident_edges(node)] = 0.0
        round_index += 1
    covered = float(hypergraph.num_hyperedges - survival.sum())
    return selected, spent, covered


def budgeted_max_coverage(
    hypergraph: RRHypergraph,
    costs: Sequence[float],
    budget: float,
) -> BudgetedIMResult:
    """Budgeted IM seed selection over an RR hyper-graph.

    Parameters
    ----------
    hypergraph:
        The polling hyper-graph.
    costs:
        Per-node seeding cost (the users' threshold values); must be
        positive.
    budget:
        Total cost cap.

    Returns the better of the cost-effectiveness greedy solution and the
    single affordable node with maximum coverage.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.shape != (hypergraph.num_nodes,):
        raise SolverError(
            f"costs must have length n={hypergraph.num_nodes}, got {costs.shape}"
        )
    if np.any(costs <= 0.0):
        raise SolverError("all seeding costs must be positive")
    if budget <= 0.0:
        raise SolverError(f"budget must be positive, got {budget}")

    greedy_seeds, greedy_cost, greedy_covered = _greedy_by_cost_effectiveness(
        hypergraph, costs, budget
    )

    affordable = np.flatnonzero(costs <= budget)
    best_single, best_single_covered = None, 0.0
    for node in affordable:
        covered = float(hypergraph.degree(int(node)))
        if covered > best_single_covered:
            best_single, best_single_covered = int(node), covered

    scale = hypergraph.num_nodes / max(hypergraph.num_hyperedges, 1)
    if best_single is not None and best_single_covered > greedy_covered:
        return BudgetedIMResult(
            seeds=[best_single],
            total_cost=float(costs[best_single]),
            covered=best_single_covered,
            spread_estimate=scale * best_single_covered,
            picked_single_best=True,
        )
    return BudgetedIMResult(
        seeds=greedy_seeds,
        total_cost=greedy_cost,
        covered=greedy_covered,
        spread_estimate=scale * greedy_covered,
        picked_single_best=False,
    )
