"""Cheap seeding heuristics: degree, random, PageRank.

Standard non-adaptive baselines from the IM literature; useful as sanity
floors in experiments (any principled method should beat random) and as
warm starts.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import SolverError
from repro.graphs.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator

__all__ = ["degree_seeds", "random_seeds", "pagerank_seeds", "pagerank_scores"]


def _check_k(graph: DiGraph, k: int) -> int:
    if k < 0:
        raise SolverError(f"k must be non-negative, got {k}")
    return min(k, graph.num_nodes)


def degree_seeds(graph: DiGraph, k: int) -> List[int]:
    """The ``k`` nodes of highest out-degree (ties by node id)."""
    k = _check_k(graph, k)
    degrees = graph.out_degrees()
    order = np.lexsort((np.arange(graph.num_nodes), -degrees))
    return [int(u) for u in order[:k]]


def random_seeds(graph: DiGraph, k: int, seed: SeedLike = None) -> List[int]:
    """``k`` distinct uniformly random nodes."""
    k = _check_k(graph, k)
    rng = as_generator(seed)
    return [int(u) for u in rng.choice(graph.num_nodes, size=k, replace=False)]


def pagerank_scores(
    graph: DiGraph,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Power-iteration PageRank on the graph (uniform teleport).

    Dangling nodes redistribute their mass uniformly, the textbook fix.
    """
    if not 0.0 < damping < 1.0:
        raise SolverError(f"damping must lie in (0, 1), got {damping}")
    n = graph.num_nodes
    if n == 0:
        return np.empty(0)
    rank = np.full(n, 1.0 / n)
    out_deg = graph.out_degrees().astype(np.float64)
    dangling = out_deg == 0
    sources = np.repeat(np.arange(n, dtype=np.int64), graph.out_degrees())
    for _ in range(max_iterations):
        contrib = np.where(dangling, 0.0, rank / np.maximum(out_deg, 1.0))
        new_rank = np.zeros(n)
        np.add.at(new_rank, graph.out_targets, contrib[sources])
        dangling_mass = rank[dangling].sum() / n
        new_rank = (1.0 - damping) / n + damping * (new_rank + dangling_mass)
        if np.abs(new_rank - rank).sum() < tolerance:
            rank = new_rank
            break
        rank = new_rank
    return rank


def pagerank_seeds(graph: DiGraph, k: int, damping: float = 0.85) -> List[int]:
    """The ``k`` nodes of highest PageRank."""
    k = _check_k(graph, k)
    scores = pagerank_scores(graph, damping=damping)
    order = np.lexsort((np.arange(graph.num_nodes), -scores))
    return [int(u) for u in order[:k]]
