"""Discrete influence maximization baselines (the paper's "IM")."""

from repro.discrete.budgeted import BudgetedIMResult, budgeted_max_coverage
from repro.discrete.greedy import celf_greedy
from repro.discrete.group_persuasion import GroupPersuasionResult, group_persuasion
from repro.discrete.heuristics import degree_seeds, pagerank_seeds, random_seeds
from repro.discrete.ris import RISResult, ris_influence_maximization

__all__ = [
    "celf_greedy",
    "ris_influence_maximization",
    "RISResult",
    "degree_seeds",
    "random_seeds",
    "pagerank_seeds",
    "budgeted_max_coverage",
    "BudgetedIMResult",
    "group_persuasion",
    "GroupPersuasionResult",
]
