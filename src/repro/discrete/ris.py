"""RIS / polling discrete influence maximization.

This is the paper's discrete baseline ("IM"): build a random hyper-graph of
RR sets, then greedily pick the ``k`` nodes that maximize hyper-graph
coverage (Borgs et al. 2014; Tang et al. 2014/2015).  The returned seed set
is a ``(1 - 1/e - eps)``-approximation with high probability for large
enough ``theta`` (see :mod:`repro.rrset.sample_size`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.diffusion.base import DiffusionModel
from repro.exceptions import SolverError
from repro.rrset.coverage import max_coverage
from repro.rrset.hypergraph import RRHypergraph
from repro.rrset.sample_size import approximation_lower_bound, default_num_rr_sets
from repro.utils.rng import SeedLike
from repro.utils.timing import TimingBreakdown

__all__ = ["RISResult", "ris_influence_maximization"]


@dataclass(frozen=True)
class RISResult:
    """Outcome of an RIS influence-maximization run.

    ``spread_estimate`` is the hyper-graph estimate ``n * deg_H(S) / theta``;
    ``approximation_bound`` is the Figure-4 quantity ``1 - 1/e - eps``
    implied by ``theta`` and the achieved spread.
    """

    seeds: List[int]
    spread_estimate: float
    approximation_bound: float
    num_hyperedges: int
    timings: TimingBreakdown
    hypergraph: RRHypergraph


def ris_influence_maximization(
    model: DiffusionModel,
    k: int,
    num_hyperedges: Optional[int] = None,
    seed: SeedLike = None,
    hypergraph: Optional[RRHypergraph] = None,
) -> RISResult:
    """Select ``k`` seeds by RR-set maximum coverage.

    Parameters
    ----------
    model:
        Diffusion model (IC, LT, or any triggering model).
    k:
        Seed budget.
    num_hyperedges:
        Number of RR sets ``theta``; defaults to the ``O(n log n)`` rule.
    seed:
        RNG seed for hyper-graph construction.
    hypergraph:
        Pass an existing hyper-graph to reuse it across solvers (the paper
        runs IM, UD and CD on the *same* ``H``); ``num_hyperedges`` and
        ``seed`` are then ignored.
    """
    if k < 0:
        raise SolverError(f"k must be non-negative, got {k}")
    timings = TimingBreakdown()
    if hypergraph is None:
        theta = num_hyperedges if num_hyperedges is not None else default_num_rr_sets(model.num_nodes)
        with timings.phase("hypergraph"):
            hypergraph = RRHypergraph.build(model, theta, seed=seed)
    with timings.phase("selection"):
        result = max_coverage(hypergraph, k)
    bound = (
        approximation_lower_bound(
            hypergraph.num_nodes, max(k, 1), hypergraph.num_hyperedges, result.spread_estimate
        )
        if result.spread_estimate > 0
        else 0.0
    )
    return RISResult(
        seeds=result.seeds,
        spread_estimate=result.spread_estimate,
        approximation_bound=bound,
        num_hyperedges=hypergraph.num_hyperedges,
        timings=timings,
        hypergraph=hypergraph,
    )
