"""Robustness analysis: how fragile is a discount plan to misspecification?

Two things the optimizer trusts are estimated, not known: the users'
purchase-probability curves (Section 9.1 synthesizes them; Table 4 varies
their mixture) and the edge propagation probabilities (the alpha
parameter).  A plan optimized for one belief may be deployed into a
different reality; these tools measure the damage.

* :func:`curve_misspecification` — score one fixed configuration under
  perturbed curve assignments (users' sensitivity re-drawn), reporting the
  spread distribution across perturbations — the Table-4 question asked of
  a *fixed plan* instead of re-optimized ones.
* :func:`edge_misspecification` — score a fixed configuration while the
  true alpha deviates from the assumed one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.configuration import Configuration
from repro.core.population import CurvePopulation, paper_mixture
from repro.core.problem import CIMProblem
from repro.diffusion.independent_cascade import IndependentCascade
from repro.exceptions import SolverError
from repro.graphs.digraph import DiGraph
from repro.graphs.weights import assign_weighted_cascade
from repro.utils.rng import SeedLike, spawn_generators

__all__ = ["RobustnessReport", "curve_misspecification", "edge_misspecification"]


@dataclass(frozen=True)
class RobustnessReport:
    """Spread of one plan across perturbed worlds."""

    nominal_spread: float
    perturbed_spreads: List[float]

    @property
    def worst(self) -> float:
        """Lowest spread seen across perturbations."""
        return min(self.perturbed_spreads) if self.perturbed_spreads else self.nominal_spread

    @property
    def mean(self) -> float:
        """Average spread across perturbations."""
        if not self.perturbed_spreads:
            return self.nominal_spread
        return float(np.mean(self.perturbed_spreads))

    @property
    def worst_case_loss(self) -> float:
        """Fractional spread loss in the worst perturbed world."""
        if self.nominal_spread <= 0:
            return 0.0
        return max(0.0, 1.0 - self.worst / self.nominal_spread)


def curve_misspecification(
    configuration: Configuration,
    problem: CIMProblem,
    num_perturbations: int = 10,
    sensitive_fraction: float = 0.85,
    linear_fraction: float = 0.10,
    insensitive_fraction: float = 0.05,
    evaluation_samples: int = 2000,
    seed: SeedLike = None,
) -> RobustnessReport:
    """Score a fixed plan under re-drawn curve assignments.

    Keeps the *mixture fractions* but re-randomizes which user gets which
    curve — modelling segment-membership uncertainty.  The nominal spread
    uses the problem's own population.
    """
    if num_perturbations < 1:
        raise SolverError("num_perturbations must be >= 1")
    rngs = spawn_generators(seed, num_perturbations + 1)
    nominal = problem.evaluate(
        configuration, num_samples=evaluation_samples, seed=rngs[0]
    ).mean

    spreads: List[float] = []
    for index in range(num_perturbations):
        population = paper_mixture(
            problem.num_nodes,
            sensitive_fraction=sensitive_fraction,
            linear_fraction=linear_fraction,
            insensitive_fraction=insensitive_fraction,
            seed=rngs[index + 1],
        )
        perturbed_problem = CIMProblem(problem.model, population, budget=problem.budget)
        spreads.append(
            perturbed_problem.evaluate(
                configuration, num_samples=evaluation_samples, seed=rngs[index + 1]
            ).mean
        )
    return RobustnessReport(nominal_spread=nominal, perturbed_spreads=spreads)


def edge_misspecification(
    configuration: Configuration,
    graph: DiGraph,
    population: CurvePopulation,
    assumed_alpha: float,
    true_alphas: Sequence[float],
    evaluation_samples: int = 2000,
    seed: SeedLike = None,
) -> RobustnessReport:
    """Score a fixed plan while the deployed world's alpha varies.

    ``graph`` must carry *topology only* semantics here: weighted-cascade
    probabilities are re-derived for each alpha.  The nominal spread uses
    ``assumed_alpha``.
    """
    if not true_alphas:
        raise SolverError("true_alphas must be non-empty")
    rngs = spawn_generators(seed, len(true_alphas) + 1)

    def spread_at(alpha: float, rng) -> float:
        weighted = assign_weighted_cascade(graph, alpha=alpha)
        problem = CIMProblem(
            IndependentCascade(weighted), population, budget=max(configuration.cost, 1e-9)
        )
        return problem.evaluate(
            configuration, num_samples=evaluation_samples, seed=rng
        ).mean

    nominal = spread_at(assumed_alpha, rngs[0])
    spreads = [
        spread_at(float(alpha), rngs[index + 1]) for index, alpha in enumerate(true_alphas)
    ]
    return RobustnessReport(nominal_spread=nominal, perturbed_spreads=spreads)
