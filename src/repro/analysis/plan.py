"""Campaign-plan diagnostics.

A discount configuration is the *output* of the optimization; before a
marketing team acts on it, they want to see what it actually does: how
many users get targeted, at what discount levels, how the spend splits
across user segments (curves), how many seeds to expect, and what spread
that buys.  :func:`summarize_plan` computes these, and
:func:`compare_methods` runs several solvers and tabulates their summaries
side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.configuration import Configuration
from repro.core.expected_budget import expected_cost
from repro.core.problem import CIMProblem
from repro.core.solvers import solve
from repro.rrset.hypergraph import RRHypergraph
from repro.utils.rng import SeedLike

__all__ = ["PlanSummary", "summarize_plan", "compare_methods"]


@dataclass
class PlanSummary:
    """What a discount configuration does, in marketing terms."""

    num_targeted: int
    worst_case_spend: float
    expected_spend: float
    expected_seeds: float
    min_discount: float
    max_discount: float
    mean_discount: float
    spend_by_curve: Dict[str, float] = field(default_factory=dict)
    targets_by_curve: Dict[str, int] = field(default_factory=dict)
    spread_estimate: Optional[float] = None

    def as_text(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"targeted users:      {self.num_targeted}",
            f"worst-case spend:    {self.worst_case_spend:.3f}",
            f"expected spend:      {self.expected_spend:.3f}",
            f"expected seed count: {self.expected_seeds:.3f}",
            (
                f"discount range:      {self.min_discount:.0%} - {self.max_discount:.0%} "
                f"(mean {self.mean_discount:.0%})"
            ),
        ]
        if self.spread_estimate is not None:
            lines.append(f"estimated spread:    {self.spread_estimate:.2f}")
        for curve_name in sorted(self.targets_by_curve):
            lines.append(
                f"  {curve_name:>12s}: {self.targets_by_curve[curve_name]:4d} users, "
                f"spend {self.spend_by_curve[curve_name]:.3f}"
            )
        return "\n".join(lines)


def summarize_plan(
    configuration: Configuration,
    problem: CIMProblem,
    hypergraph: Optional[RRHypergraph] = None,
) -> PlanSummary:
    """Diagnose a discount plan against its problem instance.

    ``hypergraph`` (optional) adds a Theorem-9 spread estimate.
    """
    population = problem.population
    support = configuration.support
    discounts = configuration.discounts
    seed_probs = population.probabilities(discounts)

    spend_by_curve: Dict[str, float] = {}
    targets_by_curve: Dict[str, int] = {}
    for node in support:
        name = population.curve(int(node)).name
        spend_by_curve[name] = spend_by_curve.get(name, 0.0) + float(discounts[node])
        targets_by_curve[name] = targets_by_curve.get(name, 0) + 1

    spread = None
    if hypergraph is not None:
        from repro.core.objective import HypergraphOracle

        spread = HypergraphOracle(hypergraph, population).evaluate(configuration)

    targeted_discounts = discounts[support] if support.size else np.zeros(0)
    return PlanSummary(
        num_targeted=int(support.size),
        worst_case_spend=configuration.cost,
        expected_spend=expected_cost(configuration, population),
        expected_seeds=float(seed_probs.sum()),
        min_discount=float(targeted_discounts.min()) if support.size else 0.0,
        max_discount=float(targeted_discounts.max()) if support.size else 0.0,
        mean_discount=float(targeted_discounts.mean()) if support.size else 0.0,
        spend_by_curve=spend_by_curve,
        targets_by_curve=targets_by_curve,
        spread_estimate=spread,
    )


def compare_methods(
    problem: CIMProblem,
    methods: Sequence[str] = ("im", "ud", "cd"),
    hypergraph: Optional[RRHypergraph] = None,
    seed: SeedLike = None,
    **solver_options,
) -> Dict[str, PlanSummary]:
    """Run several strategies and summarize each plan on a shared hyper-graph."""
    if hypergraph is None:
        hypergraph = problem.build_hypergraph(seed=seed)
    summaries: Dict[str, PlanSummary] = {}
    for method in methods:
        result = solve(problem, method, hypergraph=hypergraph, seed=seed, **solver_options)
        summaries[method] = summarize_plan(result.configuration, problem, hypergraph)
    return summaries
