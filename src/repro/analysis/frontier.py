"""Budget-frontier analysis: spread as a function of budget.

Answers the planning question "how much budget is worth spending?" by
sweeping the budget and recording, per strategy, the achieved spread and
its marginal value (spread gained per extra budget unit).  Monotonicity of
``UI`` (Theorem 5) makes each frontier non-decreasing; submodularity-like
saturation makes marginal values fall — the knee of the curve is where
spending should stop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.population import CurvePopulation
from repro.core.problem import CIMProblem
from repro.core.solvers import solve
from repro.diffusion.base import DiffusionModel
from repro.exceptions import SolverError
from repro.rrset.hypergraph import RRHypergraph
from repro.utils.rng import SeedLike

__all__ = ["BudgetFrontierPoint", "budget_frontier"]


@dataclass(frozen=True)
class BudgetFrontierPoint:
    """One point of the spread-vs-budget frontier."""

    budget: float
    spread: float
    marginal: float  # spread gained per budget unit since the previous point


def budget_frontier(
    model: DiffusionModel,
    population: CurvePopulation,
    budgets: Sequence[float],
    method: str = "cd",
    hypergraph: Optional[RRHypergraph] = None,
    num_hyperedges: Optional[int] = None,
    seed: SeedLike = None,
    **solver_options,
) -> List[BudgetFrontierPoint]:
    """Sweep ``budgets`` (ascending) and return the frontier for ``method``.

    All budgets share one hyper-graph, so the frontier is internally
    consistent (no estimator re-sampling noise between points).
    """
    budgets = [float(b) for b in budgets]
    if not budgets:
        raise SolverError("budgets must be non-empty")
    if sorted(budgets) != budgets:
        raise SolverError("budgets must be ascending")
    if budgets[0] <= 0:
        raise SolverError("budgets must be positive")

    if hypergraph is None:
        probe = CIMProblem(model, population, budget=budgets[0])
        hypergraph = probe.build_hypergraph(num_hyperedges=num_hyperedges, seed=seed)

    points: List[BudgetFrontierPoint] = []
    previous_budget, previous_spread = 0.0, 0.0
    for budget in budgets:
        problem = CIMProblem(model, population, budget=budget)
        result = solve(problem, method, hypergraph=hypergraph, seed=seed, **solver_options)
        delta_budget = budget - previous_budget
        marginal = (
            (result.spread_estimate - previous_spread) / delta_budget
            if delta_budget > 0
            else 0.0
        )
        points.append(
            BudgetFrontierPoint(
                budget=budget, spread=result.spread_estimate, marginal=marginal
            )
        )
        previous_budget, previous_spread = budget, result.spread_estimate
    return points
