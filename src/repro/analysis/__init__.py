"""Analysis tools: plan diagnostics, budget frontiers, strategy comparison."""

from repro.analysis.frontier import BudgetFrontierPoint, budget_frontier
from repro.analysis.influence import (
    PlanOverlap,
    influence_scores,
    plan_overlap,
    top_influencers,
)
from repro.analysis.plan import PlanSummary, compare_methods, summarize_plan
from repro.analysis.robustness import (
    RobustnessReport,
    curve_misspecification,
    edge_misspecification,
)

__all__ = [
    "PlanSummary",
    "summarize_plan",
    "compare_methods",
    "BudgetFrontierPoint",
    "budget_frontier",
    "RobustnessReport",
    "curve_misspecification",
    "edge_misspecification",
    "influence_scores",
    "top_influencers",
    "PlanOverlap",
    "plan_overlap",
]
