"""Per-user influence scores and plan-overlap analysis.

Marketing questions the core solvers don't answer directly:

* "who are our most influential users?" — :func:`influence_scores` ranks
  every node by its singleton influence spread ``I({u})``, estimated for
  free from the hyper-graph degrees (``n * deg_H(u) / theta`` is unbiased
  for ``I({u})``);
* "how different are these two plans, really?" — :func:`plan_overlap`
  compares two configurations by shared targets, budget overlap and
  rank correlation of the discounts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.configuration import Configuration
from repro.exceptions import SolverError
from repro.rrset.hypergraph import RRHypergraph

__all__ = ["influence_scores", "top_influencers", "PlanOverlap", "plan_overlap"]


def influence_scores(hypergraph: RRHypergraph) -> np.ndarray:
    """Unbiased singleton influence estimate per node.

    ``scores[u] = n * deg_H(u) / theta`` estimates ``I({u})`` — the
    polling identity specialized to singletons.  One hyper-graph therefore
    prices every user's influence simultaneously.
    """
    if hypergraph.num_hyperedges == 0:
        raise SolverError("hyper-graph has no hyper-edges")
    return (
        hypergraph.num_nodes
        * hypergraph.degrees().astype(np.float64)
        / hypergraph.num_hyperedges
    )


def top_influencers(hypergraph: RRHypergraph, k: int) -> List[Tuple[int, float]]:
    """The ``k`` nodes of highest singleton influence, with their scores.

    Note these are *individually* influential users; a good seed set
    avoids overlapping influence (that is what max-coverage greedy does),
    so this ranking is a diagnostic, not a seeding strategy.
    """
    if k < 0:
        raise SolverError(f"k must be non-negative, got {k}")
    scores = influence_scores(hypergraph)
    order = np.lexsort((np.arange(scores.size), -scores))[:k]
    return [(int(u), float(scores[u])) for u in order]


@dataclass(frozen=True)
class PlanOverlap:
    """Similarity measures between two discount plans."""

    shared_targets: int
    jaccard: float
    budget_overlap: float  # sum of min(c_a, c_b) / max budget
    discount_correlation: float  # Pearson r over the union support


def plan_overlap(a: Configuration, b: Configuration) -> PlanOverlap:
    """Compare two configurations on the same user universe."""
    if len(a) != len(b):
        raise SolverError("configurations cover different user universes")
    support_a = set(a.support.tolist())
    support_b = set(b.support.tolist())
    shared = support_a & support_b
    union = support_a | support_b
    jaccard = len(shared) / len(union) if union else 1.0

    overlap_mass = float(np.minimum(a.discounts, b.discounts).sum())
    denom = max(a.cost, b.cost)
    budget_overlap = overlap_mass / denom if denom > 0 else 1.0

    if union:
        union_arr = np.asarray(sorted(union), dtype=np.int64)
        xs = a.discounts[union_arr]
        ys = b.discounts[union_arr]
        if np.std(xs) > 1e-12 and np.std(ys) > 1e-12:
            correlation = float(np.corrcoef(xs, ys)[0, 1])
        else:
            correlation = 1.0 if np.allclose(xs, ys) else 0.0
    else:
        correlation = 1.0
    return PlanOverlap(
        shared_targets=len(shared),
        jaccard=jaccard,
        budget_overlap=budget_overlap,
        discount_correlation=correlation,
    )
