"""Independent Cascade (IC) model.

Kempe, Kleinberg & Tardos (2003).  When node ``u`` becomes active it gets a
single chance to activate each currently inactive out-neighbor ``v``,
succeeding independently with the edge probability ``p(u, v)``.

This is the model used throughout the paper's evaluation (Section 9) with
weighted-cascade probabilities ``alpha / in_degree(v)``.

Implementation notes
--------------------
Forward cascades and reverse RR sampling are array-based BFS loops: the
frontier is a growing ``int64`` buffer, visitation is a reusable ``uint8``
stamp array (stamped with a per-call epoch so it never needs clearing), and
each node's coin flips are one vectorized ``rng.random(deg) < probs``
comparison.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.graphs.digraph import DiGraph

__all__ = ["IndependentCascade"]


class IndependentCascade(DiffusionModel):
    """IC model over ``graph``'s per-edge probabilities."""

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        # Reusable visitation stamps; epoch increments per traversal, so a
        # node is "visited" iff its stamp equals the current epoch.
        self._stamp = np.zeros(graph.num_nodes, dtype=np.int64)
        self._epoch = 0

    def _next_epoch(self) -> int:
        self._epoch += 1
        return self._epoch

    def sample_cascade(self, seeds: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """One forward IC cascade; returns activated nodes in BFS order."""
        seeds = self._validate_seeds(seeds)
        graph = self.graph
        epoch = self._next_epoch()
        stamp = self._stamp

        activated = list(seeds.tolist())
        stamp[seeds] = epoch
        head = 0
        offsets, targets, probs = graph.out_offsets, graph.out_targets, graph.out_probs
        while head < len(activated):
            u = activated[head]
            head += 1
            lo, hi = offsets[u], offsets[u + 1]
            if lo == hi:
                continue
            # DiGraph's constructor rejects duplicate targets within a
            # neighbor slice, so the stamp mask needs no in-batch dedup.
            # Masking preserves slice order, and the coin flips are drawn
            # before filtering — RNG consumption and BFS order are
            # identical to the historical per-neighbor loop.
            success = rng.random(hi - lo) < probs[lo:hi]
            fresh = targets[lo:hi][success]
            fresh = fresh[stamp[fresh] != epoch]
            stamp[fresh] = epoch
            activated.extend(fresh.tolist())
        return np.asarray(activated, dtype=np.int64)

    def sample_rr_set(self, root: int, rng: np.random.Generator) -> np.ndarray:
        """One reverse-reachable set for ``root``.

        Reverse BFS on the transpose graph: the in-edge ``(u -> root path)``
        is traversed with the *original* edge's probability, exactly the
        poll of Section 8 ("the propagation probability of an edge (v, u) in
        G^T is pp_uv").
        """
        graph = self.graph
        if not 0 <= root < graph.num_nodes:
            raise IndexError(f"root {root} not in graph with {graph.num_nodes} nodes")
        epoch = self._next_epoch()
        stamp = self._stamp

        reached = [root]
        stamp[root] = epoch
        head = 0
        offsets, sources, probs = graph.in_offsets, graph.in_sources, graph.in_probs
        while head < len(reached):
            v = reached[head]
            head += 1
            lo, hi = offsets[v], offsets[v + 1]
            if lo == hi:
                continue
            # Same vectorized frontier step as ``sample_cascade`` (simple
            # graph: in-neighbor slices carry no duplicates).
            success = rng.random(hi - lo) < probs[lo:hi]
            fresh = sources[lo:hi][success]
            fresh = fresh[stamp[fresh] != epoch]
            stamp[fresh] = epoch
            reached.extend(fresh.tolist())
        return np.asarray(reached, dtype=np.int64)
