"""Vectorized batch simulation of Independent Cascade.

The paper's evaluation protocol scores every configuration with 20,000
Monte-Carlo simulations; running them one BFS at a time in Python is the
bottleneck of the whole harness.  This module exploits the live-edge view
of IC: a cascade outcome is exactly reachability over a random subgraph
that keeps each edge ``e`` with probability ``p_e``, so *many* outcomes
can be advanced simultaneously with dense boolean matrix operations:

* ``live``     — an ``(m, batch)`` boolean matrix of per-sample edge coins;
* ``active``   — an ``(n, batch)`` boolean activation matrix;
* one frontier step ORs, per node, the ``frontier[source] & live`` rows of
  its in-edges — a single ``np.logical_or.reduceat`` over the in-CSR
  layout — and iterates to the reachability fixpoint.

Equivalent in distribution to
:meth:`repro.diffusion.independent_cascade.IndependentCascade.sample_cascade`
(each edge flips exactly one coin), typically ~10x faster for evaluation
workloads.  IC-only: LT's live-edge distribution couples a node's in-edges
and is simulated by the scalar engine.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.diffusion.montecarlo import DEFAULT_SAMPLE_CHUNK, SpreadEstimate
from repro.exceptions import EstimationError
from repro.graphs.digraph import DiGraph
from repro.obs.context import get_metrics, get_tracer
from repro.parallel.pool import partition_chunks, run_chunks
from repro.runtime.deadline import DeadlineLike, as_deadline
from repro.utils.rng import SeedLike, as_generator, spawn_sequences
from repro.utils.stats import RunningStat

__all__ = ["batch_spread_ic", "batch_configuration_spread_ic", "batch_cascade_sizes_ic"]

_DEFAULT_BATCH = 256


def _edge_order_by_target(graph: DiGraph) -> np.ndarray:
    """Permutation putting out-CSR edges into in-CSR (target-grouped) order."""
    return np.argsort(graph.out_targets, kind="stable")


def _run_batch(
    graph: DiGraph,
    active: np.ndarray,
    rng: np.random.Generator,
    in_order_probs: np.ndarray,
    in_order_sources: np.ndarray,
    reduce_starts: np.ndarray,
    nodes_with_in_edges: np.ndarray,
) -> np.ndarray:
    """Advance one batch to its reachability fixpoint; returns sizes."""
    batch = active.shape[1]
    live = rng.random((in_order_probs.size, batch)) < in_order_probs[:, None]
    frontier = active.copy()
    while frontier.any():
        contrib = frontier[in_order_sources] & live
        # reduceat over the in-CSR segments ORs each node's in-edge rows.
        reached = np.logical_or.reduceat(contrib, reduce_starts, axis=0)
        newly = np.zeros_like(active)
        newly[nodes_with_in_edges] = reached
        frontier = newly & ~active
        active |= frontier
    return active.sum(axis=0)


def batch_cascade_sizes_ic(
    graph: DiGraph,
    num_samples: int,
    rng: np.random.Generator,
    seeds: Optional[Sequence[int]] = None,
    seed_probabilities: Optional[np.ndarray] = None,
    batch_size: int = _DEFAULT_BATCH,
) -> np.ndarray:
    """Simulate ``num_samples`` IC cascades; returns the size of each.

    Exactly one of ``seeds`` (fixed seed set) or ``seed_probabilities``
    (independent per-node seeding, Eq. 1) must be given.
    """
    if (seeds is None) == (seed_probabilities is None):
        raise EstimationError("pass exactly one of seeds / seed_probabilities")
    if num_samples <= 0:
        raise EstimationError(f"num_samples must be positive, got {num_samples}")
    if batch_size <= 0:
        raise EstimationError(f"batch_size must be positive, got {batch_size}")
    n = graph.num_nodes

    seed_mask = None
    if seeds is not None:
        seed_arr = np.unique(np.asarray(list(seeds), dtype=np.int64))
        if seed_arr.size and (seed_arr[0] < 0 or seed_arr[-1] >= n):
            raise EstimationError("seed id out of range")
        seed_mask = np.zeros(n, dtype=bool)
        seed_mask[seed_arr] = True
    else:
        q = np.asarray(seed_probabilities, dtype=np.float64)
        if q.shape != (n,):
            raise EstimationError(f"seed_probabilities must have length n={n}")
        if np.any(q < 0.0) or np.any(q > 1.0):
            raise EstimationError("seed probabilities must lie in [0, 1]")

    order = _edge_order_by_target(graph)
    sources = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(graph.out_offsets).astype(np.int64)
    )
    in_order_sources = sources[order]
    in_order_probs = graph.out_probs[order]
    in_degrees = graph.in_degrees()
    nodes_with_in_edges = np.flatnonzero(in_degrees > 0)
    reduce_starts = graph.in_offsets[nodes_with_in_edges]

    sizes = np.empty(num_samples, dtype=np.int64)
    done = 0
    while done < num_samples:
        batch = min(batch_size, num_samples - done)
        if seed_mask is not None:
            active = np.repeat(seed_mask[:, None], batch, axis=1)
        else:
            active = rng.random((n, batch)) < q[:, None]
        sizes[done : done + batch] = _run_batch(
            graph,
            active,
            rng,
            in_order_probs,
            in_order_sources,
            reduce_starts,
            nodes_with_in_edges,
        )
        done += batch
    return sizes


def batch_spread_ic(
    graph: DiGraph,
    seeds: Sequence[int],
    num_samples: int = 1000,
    seed: SeedLike = None,
    batch_size: int = _DEFAULT_BATCH,
) -> SpreadEstimate:
    """Vectorized estimate of ``I(S)`` under IC."""
    rng = as_generator(seed)
    sizes = batch_cascade_sizes_ic(
        graph, num_samples, rng, seeds=seeds, batch_size=batch_size
    )
    stat = RunningStat()
    stat.add_many(sizes.astype(np.float64))
    return SpreadEstimate(mean=stat.mean, stddev=stat.stddev, num_samples=num_samples)


def _batch_configuration_chunk_task(
    payload: tuple,
    count: int,
    seed_seq: np.random.SeedSequence,
    remaining: Optional[float],
) -> RunningStat:
    """One chunk of vectorized ``UI(C)`` cascades (inline or in a worker).

    The dense matrix sweep is not interruptible mid-batch, so the chunk
    ignores ``remaining``; deadline truncation happens at the chunk
    boundaries of :func:`repro.parallel.pool.run_chunks`.
    """
    graph, seed_probabilities, batch_size = payload
    rng = np.random.default_rng(seed_seq)
    sizes = batch_cascade_sizes_ic(
        graph,
        count,
        rng,
        seed_probabilities=seed_probabilities,
        batch_size=batch_size,
    )
    stat = RunningStat()
    stat.add_many(sizes.astype(np.float64))
    return stat


def batch_configuration_spread_ic(
    graph: DiGraph,
    seed_probabilities: np.ndarray,
    num_samples: int = 1000,
    seed: SeedLike = None,
    batch_size: int = _DEFAULT_BATCH,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    deadline: DeadlineLike = None,
) -> SpreadEstimate:
    """Vectorized estimate of ``UI(C)`` under IC (Eq. 2).

    Chunked through the deterministic parallel engine: the estimate is
    identical for every ``workers`` value (``0`` = one per CPU).  With a
    ``deadline``, ``num_samples`` on the returned estimate reports the
    simulations actually run.
    """
    if num_samples <= 0:
        raise EstimationError(f"num_samples must be positive, got {num_samples}")
    seed_probabilities = np.asarray(seed_probabilities, dtype=np.float64)
    budget = as_deadline(deadline)
    sizes = partition_chunks(num_samples, chunk_size or DEFAULT_SAMPLE_CHUNK)
    sequences = spawn_sequences(seed, len(sizes))
    metrics = get_metrics()
    with get_tracer().span(
        "mc.estimate", kind="UI(C)/batch", requested=num_samples, chunks=len(sizes)
    ) as span:
        stats, expired = run_chunks(
            _batch_configuration_chunk_task,
            (graph, seed_probabilities, batch_size),
            list(zip(sizes, sequences)),
            workers=workers,
            deadline=budget,
            inject_site="montecarlo.chunk",
        )
        total = RunningStat()
        for index, stat in enumerate(stats):
            total.merge(stat)
            span.event("chunk", index=index, planned=sizes[index], produced=stat.count)
            metrics.observe("mc.chunk_items", stat.count)
        span.set(produced=total.count, truncated=expired)
        metrics.inc("mc.estimates_total")
        metrics.inc("mc.requested_total", num_samples)
        metrics.inc("mc.samples_total", total.count)
        if expired:
            metrics.inc("mc.truncated_total")
        if total.count == 0:
            budget.check("estimating UI(C)")
    return SpreadEstimate(
        mean=total.mean, stddev=total.stddev, num_samples=total.count
    )
