"""Diffusion substrate: influence models and Monte-Carlo simulation."""

from repro.diffusion.base import DiffusionModel
from repro.diffusion.independent_cascade import IndependentCascade
from repro.diffusion.linear_threshold import LinearThreshold
from repro.diffusion.montecarlo import (
    SpreadEstimate,
    estimate_configuration_spread,
    estimate_spread,
    sample_seed_set,
)
from repro.diffusion.triggering import TriggeringModel

__all__ = [
    "DiffusionModel",
    "IndependentCascade",
    "LinearThreshold",
    "TriggeringModel",
    "SpreadEstimate",
    "estimate_spread",
    "estimate_configuration_spread",
    "sample_seed_set",
]
