"""Monte-Carlo estimation of influence spread.

Two estimation targets:

* ``I(S)`` — expected cascade size of a *fixed* seed set
  (:func:`estimate_spread`), and
* ``UI(C)`` — expected cascade size under a *probabilistic* seed set where
  each node ``u`` joins independently with probability ``q_u = p_u(c_u)``
  (:func:`estimate_configuration_spread`, Eq. 1–2 of the paper).

Both return a :class:`SpreadEstimate` carrying the sample mean, standard
deviation, and a normal-approximation confidence interval — the paper's
Figure 3 reports exactly these (mean ± one standard deviation over 20,000
simulations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.exceptions import EstimationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.stats import RunningStat

__all__ = [
    "SpreadEstimate",
    "estimate_spread",
    "estimate_configuration_spread",
    "sample_seed_set",
]


@dataclass(frozen=True)
class SpreadEstimate:
    """Result of a Monte-Carlo spread estimation."""

    mean: float
    stddev: float
    num_samples: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.num_samples == 0:
            return float("inf")
        return self.stddev / np.sqrt(self.num_samples)

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI for the mean."""
        half = z * self.stderr
        return (self.mean - half, self.mean + half)

    def one_sigma_band(self) -> Tuple[float, float]:
        """``mean ± stddev`` — the band plotted in the paper's Figure 3."""
        return (self.mean - self.stddev, self.mean + self.stddev)


def estimate_spread(
    model: DiffusionModel,
    seeds: Sequence[int],
    num_samples: int = 1000,
    seed: SeedLike = None,
) -> SpreadEstimate:
    """Estimate ``I(S)`` by ``num_samples`` forward cascades."""
    if num_samples <= 0:
        raise EstimationError(f"num_samples must be positive, got {num_samples}")
    rng = as_generator(seed)
    stat = RunningStat()
    for _ in range(num_samples):
        stat.add(float(model.sample_cascade_size(seeds, rng)))
    return SpreadEstimate(mean=stat.mean, stddev=stat.stddev, num_samples=num_samples)


def sample_seed_set(
    seed_probabilities: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Draw one random seed set ``S ~ Pr[S; V, C]`` (Eq. 1).

    Because users become seeds independently, sampling reduces to one
    Bernoulli draw per node with probability ``q_u = p_u(c_u)``.
    """
    seed_probabilities = np.asarray(seed_probabilities, dtype=np.float64)
    if seed_probabilities.ndim != 1:
        raise EstimationError("seed_probabilities must be a 1-D vector")
    if np.any(seed_probabilities < 0.0) or np.any(seed_probabilities > 1.0):
        raise EstimationError("seed probabilities must lie in [0, 1]")
    draws = rng.random(seed_probabilities.size)
    return np.flatnonzero(draws < seed_probabilities)


def estimate_configuration_spread(
    model: DiffusionModel,
    seed_probabilities: np.ndarray,
    num_samples: int = 1000,
    seed: SeedLike = None,
) -> SpreadEstimate:
    """Estimate ``UI(C)`` (Eq. 2) by sampling seed sets then cascades.

    Each iteration draws ``S ~ Pr[S; V, C]`` and one cascade from ``S``; the
    resulting cascade sizes are i.i.d. unbiased samples of ``UI(C)``.  The
    reported standard deviation therefore includes *both* sources of
    randomness — seed-set uncertainty and cascade uncertainty — matching the
    paper's note that CIM "introduces extra uncertainty in the seed set".
    """
    if num_samples <= 0:
        raise EstimationError(f"num_samples must be positive, got {num_samples}")
    seed_probabilities = np.asarray(seed_probabilities, dtype=np.float64)
    if seed_probabilities.shape != (model.num_nodes,):
        raise EstimationError(
            f"seed_probabilities must have length n={model.num_nodes}, "
            f"got {seed_probabilities.shape}"
        )
    rng = as_generator(seed)
    stat = RunningStat()
    for _ in range(num_samples):
        seeds = sample_seed_set(seed_probabilities, rng)
        if seeds.size == 0:
            stat.add(0.0)
        else:
            stat.add(float(model.sample_cascade_size(seeds, rng)))
    return SpreadEstimate(mean=stat.mean, stddev=stat.stddev, num_samples=num_samples)
