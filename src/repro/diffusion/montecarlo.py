"""Monte-Carlo estimation of influence spread.

Two estimation targets:

* ``I(S)`` — expected cascade size of a *fixed* seed set
  (:func:`estimate_spread`), and
* ``UI(C)`` — expected cascade size under a *probabilistic* seed set where
  each node ``u`` joins independently with probability ``q_u = p_u(c_u)``
  (:func:`estimate_configuration_spread`, Eq. 1–2 of the paper).

Both return a :class:`SpreadEstimate` carrying the sample mean, standard
deviation, and a normal-approximation confidence interval — the paper's
Figure 3 reports exactly these (mean ± one standard deviation over 20,000
simulations).

Simulations are i.i.d., so both estimators run through the deterministic
parallel engine (:mod:`repro.parallel`): samples are pre-partitioned into
fixed chunks, each chunk draws from its own child seed stream and returns
a :class:`~repro.utils.stats.RunningStat`, and the coordinator Chan-merges
the per-chunk statistics in chunk order.  The reported estimate is
therefore bit-identical for any ``workers`` value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.exceptions import EstimationError
from repro.obs.context import get_metrics, get_tracer
from repro.parallel.pool import partition_chunks, run_chunks
from repro.runtime.deadline import Deadline, DeadlineLike, as_deadline, deadline_iter
from repro.utils.rng import SeedLike, spawn_sequences
from repro.utils.stats import RunningStat

__all__ = [
    "SpreadEstimate",
    "estimate_spread",
    "estimate_configuration_spread",
    "sample_seed_set",
]

#: Default Monte-Carlo samples per work chunk.  Fixed — the chunk layout is
#: part of the determinism contract (see ``docs/performance.md``).
DEFAULT_SAMPLE_CHUNK = 512


@dataclass(frozen=True)
class SpreadEstimate:
    """Result of a Monte-Carlo spread estimation.

    With a single sample the standard deviation is ``nan`` (dispersion is
    unknowable, and the zero formerly reported here produced misleading
    zero-width confidence intervals); with zero samples ``stderr`` is
    ``inf``.
    """

    mean: float
    stddev: float
    num_samples: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.num_samples == 0:
            return float("inf")
        return self.stddev / math.sqrt(self.num_samples)

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI for the mean."""
        half = z * self.stderr
        return (self.mean - half, self.mean + half)

    def one_sigma_band(self) -> Tuple[float, float]:
        """``mean ± stddev`` — the band plotted in the paper's Figure 3."""
        return (self.mean - self.stddev, self.mean + self.stddev)


def _chunk_deadline(remaining: Optional[float]) -> Deadline:
    if remaining is None:
        return Deadline.never()
    return Deadline.after(float(remaining))


def _spread_chunk_task(
    payload: tuple,
    count: int,
    seed_seq: np.random.SeedSequence,
    remaining: Optional[float],
) -> RunningStat:
    """One chunk of ``I(S)`` cascades (runs inline or in a worker)."""
    model, seeds = payload
    rng = np.random.default_rng(seed_seq)
    stat = RunningStat()
    for _ in deadline_iter(count, _chunk_deadline(remaining)):
        stat.add(float(model.sample_cascade_size(seeds, rng)))
    return stat


def _configuration_chunk_task(
    payload: tuple,
    count: int,
    seed_seq: np.random.SeedSequence,
    remaining: Optional[float],
) -> RunningStat:
    """One chunk of ``UI(C)`` cascades (seed-set draw + cascade each)."""
    model, seed_probabilities = payload
    rng = np.random.default_rng(seed_seq)
    stat = RunningStat()
    for _ in deadline_iter(count, _chunk_deadline(remaining)):
        seeds = sample_seed_set(seed_probabilities, rng)
        if seeds.size == 0:
            stat.add(0.0)
        else:
            stat.add(float(model.sample_cascade_size(seeds, rng)))
    return stat


def _merged_estimate(
    task,
    payload: tuple,
    num_samples: int,
    seed: SeedLike,
    workers: Optional[int],
    chunk_size: Optional[int],
    deadline: DeadlineLike,
    what: str,
) -> SpreadEstimate:
    """Plan chunks, run them, Chan-merge the per-chunk stats in order."""
    budget = as_deadline(deadline)
    sizes = partition_chunks(num_samples, chunk_size or DEFAULT_SAMPLE_CHUNK)
    sequences = spawn_sequences(seed, len(sizes))
    chunk_args = list(zip(sizes, sequences))
    kind = "UI(C)" if task is _configuration_chunk_task else "I(S)"
    metrics = get_metrics()
    with get_tracer().span(
        "mc.estimate", kind=kind, requested=num_samples, chunks=len(sizes)
    ) as span:
        stats, expired = run_chunks(
            task,
            payload,
            chunk_args,
            workers=workers,
            deadline=budget,
            inject_site="montecarlo.chunk",
        )
        total = RunningStat()
        for index, stat in enumerate(stats):
            total.merge(stat)
            span.event("chunk", index=index, planned=sizes[index], produced=stat.count)
            metrics.observe("mc.chunk_items", stat.count)
        span.set(produced=total.count, truncated=expired)
        metrics.inc("mc.estimates_total")
        metrics.inc("mc.requested_total", num_samples)
        metrics.inc("mc.samples_total", total.count)
        if expired:
            metrics.inc("mc.truncated_total")
        if total.count == 0:
            budget.check(what)
    return SpreadEstimate(
        mean=total.mean, stddev=total.stddev, num_samples=total.count
    )


def estimate_spread(
    model: DiffusionModel,
    seeds: Sequence[int],
    num_samples: int = 1000,
    seed: SeedLike = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    deadline: DeadlineLike = None,
) -> SpreadEstimate:
    """Estimate ``I(S)`` by ``num_samples`` forward cascades.

    ``workers`` parallelizes the simulations (``0`` = one per CPU; results
    are identical for every worker count).  With a ``deadline`` the
    estimate may cover fewer samples — ``num_samples`` on the returned
    estimate reports the count actually simulated; expiring before any
    sample raises :class:`~repro.exceptions.DeadlineExceeded`.
    """
    if num_samples <= 0:
        raise EstimationError(f"num_samples must be positive, got {num_samples}")
    seed_arr = np.asarray(list(seeds), dtype=np.int64)
    return _merged_estimate(
        _spread_chunk_task,
        (model, seed_arr),
        num_samples,
        seed,
        workers,
        chunk_size,
        deadline,
        "estimating I(S)",
    )


def sample_seed_set(
    seed_probabilities: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Draw one random seed set ``S ~ Pr[S; V, C]`` (Eq. 1).

    Because users become seeds independently, sampling reduces to one
    Bernoulli draw per node with probability ``q_u = p_u(c_u)``.
    """
    seed_probabilities = np.asarray(seed_probabilities, dtype=np.float64)
    if seed_probabilities.ndim != 1:
        raise EstimationError("seed_probabilities must be a 1-D vector")
    if np.any(seed_probabilities < 0.0) or np.any(seed_probabilities > 1.0):
        raise EstimationError("seed probabilities must lie in [0, 1]")
    draws = rng.random(seed_probabilities.size)
    return np.flatnonzero(draws < seed_probabilities)


def estimate_configuration_spread(
    model: DiffusionModel,
    seed_probabilities: np.ndarray,
    num_samples: int = 1000,
    seed: SeedLike = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    deadline: DeadlineLike = None,
) -> SpreadEstimate:
    """Estimate ``UI(C)`` (Eq. 2) by sampling seed sets then cascades.

    Each iteration draws ``S ~ Pr[S; V, C]`` and one cascade from ``S``; the
    resulting cascade sizes are i.i.d. unbiased samples of ``UI(C)``.  The
    reported standard deviation therefore includes *both* sources of
    randomness — seed-set uncertainty and cascade uncertainty — matching the
    paper's note that CIM "introduces extra uncertainty in the seed set".

    ``workers``/``chunk_size``/``deadline`` behave exactly as in
    :func:`estimate_spread`.
    """
    if num_samples <= 0:
        raise EstimationError(f"num_samples must be positive, got {num_samples}")
    seed_probabilities = np.asarray(seed_probabilities, dtype=np.float64)
    if seed_probabilities.shape != (model.num_nodes,):
        raise EstimationError(
            f"seed_probabilities must have length n={model.num_nodes}, "
            f"got {seed_probabilities.shape}"
        )
    return _merged_estimate(
        _configuration_chunk_task,
        (model, seed_probabilities),
        num_samples,
        seed,
        workers,
        chunk_size,
        deadline,
        "estimating UI(C)",
    )
