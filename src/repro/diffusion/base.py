"""The :class:`DiffusionModel` interface.

A diffusion (influence) model wraps a graph and defines the random cascade
process triggered by a seed set.  The paper's framework is model-agnostic:
everything above this layer only needs

* :meth:`DiffusionModel.sample_cascade` — one forward Monte-Carlo cascade
  (the influence-spread "oracle" of Theorem 2), and
* :meth:`DiffusionModel.sample_rr_set` — one reverse-reachable set, the
  polling primitive of Section 8 (available for triggering models).

Concrete models: :class:`repro.diffusion.independent_cascade.IndependentCascade`,
:class:`repro.diffusion.linear_threshold.LinearThreshold`, and the general
:class:`repro.diffusion.triggering.TriggeringModel`.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graphs.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator

__all__ = ["DiffusionModel"]


class DiffusionModel(abc.ABC):
    """Abstract influence-cascade model over a fixed :class:`DiGraph`."""

    def __init__(self, graph: DiGraph) -> None:
        if not isinstance(graph, DiGraph):
            raise GraphError(f"graph must be a DiGraph, got {type(graph).__name__}")
        self.graph = graph

    # ------------------------------------------------------------------
    # abstract primitives
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def sample_cascade(self, seeds: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """Run one random cascade from ``seeds``.

        Returns the array of all activated node ids (including the seeds),
        in activation order.
        """

    @abc.abstractmethod
    def sample_rr_set(self, root: int, rng: np.random.Generator) -> np.ndarray:
        """Sample one reverse-reachable (RR) set for ``root``.

        The RR set contains every node that would have influenced ``root``
        in one random realization of the model — i.e. the nodes reached by a
        reverse cascade on the transpose graph (Section 8 of the paper).
        ``root`` itself is always a member.
        """

    # ------------------------------------------------------------------
    # shared conveniences
    # ------------------------------------------------------------------
    def sample_cascade_size(self, seeds: Sequence[int], rng: np.random.Generator) -> int:
        """Size of one random cascade (``|cascade|``)."""
        return int(self.sample_cascade(seeds, rng).size)

    def spread(
        self,
        seeds: Sequence[int],
        num_samples: int = 1000,
        seed: SeedLike = None,
    ) -> float:
        """Monte-Carlo estimate of the influence spread ``I(S)``.

        Computing ``I(S)`` exactly is #P-hard for IC and LT (Theorem 1
        context), so this returns the sample mean of ``num_samples``
        independent cascade sizes.
        """
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        rng = as_generator(seed)
        seeds = self._validate_seeds(seeds)
        total = 0
        for _ in range(num_samples):
            total += self.sample_cascade_size(seeds, rng)
        return total / num_samples

    def _validate_seeds(self, seeds: Iterable[int]) -> np.ndarray:
        """Normalize and bound-check a seed collection."""
        arr = np.unique(np.asarray(list(seeds), dtype=np.int64))
        if arr.size and (arr[0] < 0 or arr[-1] >= self.graph.num_nodes):
            bad = int(arr[0] if arr[0] < 0 else arr[-1])
            raise NodeNotFoundError(bad, self.graph.num_nodes)
        return arr

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the underlying graph."""
        return self.graph.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.graph!r})"
