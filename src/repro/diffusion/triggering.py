"""General triggering model.

Kempe et al. (2003): each node ``v`` independently samples a *triggering
set* ``T(v)`` from some distribution over subsets of its in-neighbors; ``v``
becomes active when any node of ``T(v)`` is active.  IC and LT are the two
canonical instances (IC: include each in-neighbor independently with the
edge probability; LT: at most one in-neighbor, chosen with probability equal
to the edge weight).

This class exposes the general mechanism so the library's claim of
model-genericity can be exercised: any distribution supplied as a
``sampler(node, in_neighbors, in_probs, rng) -> np.ndarray`` works with the
whole stack — Monte-Carlo spread, RR-set polling, and all CIM solvers.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.graphs.digraph import DiGraph

__all__ = ["TriggeringModel", "ic_trigger_sampler", "lt_trigger_sampler"]

TriggerSampler = Callable[[int, np.ndarray, np.ndarray, np.random.Generator], np.ndarray]


def ic_trigger_sampler(
    node: int,
    in_neighbors: np.ndarray,
    in_probs: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """IC triggering distribution: each in-neighbor kept independently."""
    if in_neighbors.size == 0:
        return in_neighbors
    return in_neighbors[rng.random(in_neighbors.size) < in_probs]


def lt_trigger_sampler(
    node: int,
    in_neighbors: np.ndarray,
    in_probs: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """LT triggering distribution: at most one in-neighbor by edge weight."""
    if in_neighbors.size == 0:
        return in_neighbors
    draw = rng.random()
    cumulative = np.cumsum(in_probs)
    if draw >= cumulative[-1]:
        return in_neighbors[:0]
    pick = int(np.searchsorted(cumulative, draw, side="right"))
    return in_neighbors[pick : pick + 1]


class TriggeringModel(DiffusionModel):
    """Triggering model parameterized by a triggering-set sampler.

    Parameters
    ----------
    graph:
        The social network.
    sampler:
        Callable drawing one triggering set for a node.  Defaults to the IC
        distribution, making ``TriggeringModel(graph)`` behaviorally
        identical (in distribution) to
        :class:`~repro.diffusion.independent_cascade.IndependentCascade`.
    """

    def __init__(self, graph: DiGraph, sampler: TriggerSampler = ic_trigger_sampler) -> None:
        super().__init__(graph)
        self._sampler = sampler
        self._stamp = np.zeros(graph.num_nodes, dtype=np.int64)
        self._epoch = 0

    def _next_epoch(self) -> int:
        self._epoch += 1
        return self._epoch

    def _draw_trigger_set(self, node: int, rng: np.random.Generator) -> np.ndarray:
        graph = self.graph
        lo, hi = graph.in_offsets[node], graph.in_offsets[node + 1]
        return self._sampler(node, graph.in_sources[lo:hi], graph.in_probs[lo:hi], rng)

    def sample_cascade(self, seeds: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """One forward cascade.

        Triggering sets are sampled lazily: the set ``T(v)`` is drawn the
        first time an active node could trigger ``v``, then cached for the
        rest of the cascade (each node's set must be drawn exactly once per
        realization for correctness).
        """
        seeds = self._validate_seeds(seeds)
        epoch = self._next_epoch()
        stamp = self._stamp
        trigger_sets: dict[int, frozenset[int]] = {}

        activated = list(seeds.tolist())
        stamp[seeds] = epoch
        head = 0
        graph = self.graph
        while head < len(activated):
            u = activated[head]
            head += 1
            lo, hi = int(graph.out_offsets[u]), int(graph.out_offsets[u + 1])
            for idx in range(lo, hi):
                v = int(graph.out_targets[idx])
                if stamp[v] == epoch:
                    continue
                if v not in trigger_sets:
                    trigger_sets[v] = frozenset(self._draw_trigger_set(v, rng).tolist())
                if u in trigger_sets[v]:
                    stamp[v] = epoch
                    activated.append(v)
        return np.asarray(activated, dtype=np.int64)

    def sample_rr_set(self, root: int, rng: np.random.Generator) -> np.ndarray:
        """One RR set: reverse closure through freshly sampled trigger sets."""
        graph = self.graph
        if not 0 <= root < graph.num_nodes:
            raise IndexError(f"root {root} not in graph with {graph.num_nodes} nodes")
        epoch = self._next_epoch()
        stamp = self._stamp

        reached = [root]
        stamp[root] = epoch
        head = 0
        while head < len(reached):
            v = reached[head]
            head += 1
            for u in self._draw_trigger_set(v, rng):
                u = int(u)
                if stamp[u] != epoch:
                    stamp[u] = epoch
                    reached.append(u)
        return np.asarray(reached, dtype=np.int64)
