"""Linear Threshold (LT) model.

Kempe, Kleinberg & Tardos (2003).  Each node ``v`` draws a threshold
``theta_v ~ U[0, 1]``; ``v`` activates once the summed weight of its active
in-neighbors reaches ``theta_v``.  Edge probabilities double as the LT edge
weights and must satisfy ``sum_u w(u, v) <= 1`` for every ``v`` — the
weighted-cascade scheme ``alpha / in_degree(v)`` guarantees this for
``alpha <= 1``.

LT is a triggering model whose live-edge distribution picks *at most one*
in-edge per node (edge ``(u, v)`` with probability ``w(u, v)``, no edge with
probability ``1 - sum_u w(u, v)``).  That equivalence gives the RR-set
sampler: a reverse random walk that, at each node, either steps to one
in-neighbor (chosen proportionally to edge weight) or stops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.diffusion.base import DiffusionModel
from repro.exceptions import GraphError
from repro.graphs.digraph import DiGraph

__all__ = ["LinearThreshold"]

_WEIGHT_SUM_TOLERANCE = 1e-9


class LinearThreshold(DiffusionModel):
    """LT model using the graph's edge probabilities as influence weights."""

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        in_weight_sums = np.zeros(graph.num_nodes, dtype=np.float64)
        np.add.at(in_weight_sums, graph.out_targets, graph.out_probs)
        if np.any(in_weight_sums > 1.0 + _WEIGHT_SUM_TOLERANCE):
            worst = int(np.argmax(in_weight_sums))
            raise GraphError(
                "LT requires per-node in-weight sums <= 1; "
                f"node {worst} has {in_weight_sums[worst]:.6f}"
            )
        self._in_weight_sums = np.minimum(in_weight_sums, 1.0)
        self._stamp = np.zeros(graph.num_nodes, dtype=np.int64)
        self._epoch = 0

    def _next_epoch(self) -> int:
        self._epoch += 1
        return self._epoch

    def sample_cascade(self, seeds: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """One forward LT cascade.

        Thresholds are sampled lazily on a node's first exposure; incoming
        active weight is accumulated incrementally, so each edge is
        processed at most once.
        """
        seeds = self._validate_seeds(seeds)
        graph = self.graph
        epoch = self._next_epoch()
        stamp = self._stamp
        thresholds: dict[int, float] = {}
        accumulated: dict[int, float] = {}

        activated = list(seeds.tolist())
        stamp[seeds] = epoch
        head = 0
        offsets, targets, probs = graph.out_offsets, graph.out_targets, graph.out_probs
        while head < len(activated):
            u = activated[head]
            head += 1
            lo, hi = int(offsets[u]), int(offsets[u + 1])
            for idx in range(lo, hi):
                v = int(targets[idx])
                if stamp[v] == epoch:
                    continue
                if v not in thresholds:
                    thresholds[v] = float(rng.random())
                    accumulated[v] = 0.0
                accumulated[v] += float(probs[idx])
                if accumulated[v] >= thresholds[v]:
                    stamp[v] = epoch
                    activated.append(v)
        return np.asarray(activated, dtype=np.int64)

    def sample_rr_set(self, root: int, rng: np.random.Generator) -> np.ndarray:
        """One RR set for ``root`` via the single-in-edge live-edge walk."""
        graph = self.graph
        if not 0 <= root < graph.num_nodes:
            raise IndexError(f"root {root} not in graph with {graph.num_nodes} nodes")
        epoch = self._next_epoch()
        stamp = self._stamp

        reached = [root]
        stamp[root] = epoch
        current = root
        offsets, sources, probs = graph.in_offsets, graph.in_sources, graph.in_probs
        while True:
            lo, hi = int(offsets[current]), int(offsets[current + 1])
            if lo == hi:
                break
            draw = rng.random()
            if draw >= self._in_weight_sums[current]:
                break  # live-edge distribution picked "no in-edge"
            # Pick the in-edge whose weight interval contains the draw.
            cumulative = np.cumsum(probs[lo:hi])
            pick = int(np.searchsorted(cumulative, draw, side="right"))
            pick = min(pick, hi - lo - 1)
            nxt = int(sources[lo + pick])
            if stamp[nxt] == epoch:
                break  # walked into a node already in the RR set: cycle
            stamp[nxt] = epoch
            reached.append(nxt)
            current = nxt
        return np.asarray(reached, dtype=np.int64)
