"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish the failure categories below.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "CurveError",
    "ConfigurationError",
    "BudgetError",
    "SolverError",
    "ConvergenceWarning",
    "EstimationError",
    "DeadlineExceeded",
    "CheckpointError",
    "PartialResultWarning",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or malformed graph input."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when a node id is outside the graph's ``[0, n)`` range."""

    def __init__(self, node: int, num_nodes: int) -> None:
        super().__init__(f"node {node} not in graph with {num_nodes} nodes")
        self.node = node
        self.num_nodes = num_nodes


class CurveError(ReproError, ValueError):
    """Raised when a seed-probability curve violates the paper's axioms.

    A valid curve must satisfy ``p(0) == 0``, ``p(1) == 1``, be monotone
    non-decreasing and map ``[0, 1]`` into ``[0, 1]`` (Section 3 of the
    paper).
    """


class ConfigurationError(ReproError, ValueError):
    """Raised when a discount configuration is malformed.

    Examples: wrong length, discounts outside ``[0, 1]``, NaNs.
    """


class BudgetError(ConfigurationError):
    """Raised when a configuration or problem violates the budget constraint."""

    def __init__(self, spent: float, budget: float) -> None:
        super().__init__(f"configuration spends {spent:.6g} > budget {budget:.6g}")
        self.spent = spent
        self.budget = budget


class SolverError(ReproError, RuntimeError):
    """Raised when a solver cannot produce a feasible solution."""


class ConvergenceWarning(UserWarning):
    """Warned when an iterative solver stops before reaching its tolerance."""


class EstimationError(ReproError, ValueError):
    """Raised for invalid estimation parameters (epsilon, delta, samples)."""


class DeadlineExceeded(ReproError, TimeoutError):
    """Raised when a run budget expires and no feasible partial result exists.

    Phases that *can* degrade gracefully (sampling, coordinate descent)
    never raise this — they return their best-so-far feasible result and
    tag it partial; only work that has produced nothing usable raises.
    """


class CheckpointError(ReproError, OSError):
    """Raised for unreadable, corrupt, or mismatched checkpoint data."""


class PartialResultWarning(UserWarning):
    """Warned when a solver returns a truncated (deadline-expired) result."""


class ObservabilityError(ReproError):
    """Raised for misuse of the tracing/metrics layer.

    Examples: registering one metric name as two different instrument
    kinds, or closing spans out of nesting order.  Instrumented pipeline
    code never triggers these; they guard direct API use.
    """
