"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish the failure categories below.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "CurveError",
    "ConfigurationError",
    "BudgetError",
    "SolverError",
    "ConstraintError",
    "ConvergenceWarning",
    "EstimationError",
    "StorageError",
    "DeadlineExceeded",
    "CheckpointError",
    "PartialResultWarning",
    "ObservabilityError",
    "WorkerPoolError",
    "PoisonChunkError",
    "PoolBrokenError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or malformed graph input."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when a node id is outside the graph's ``[0, n)`` range."""

    def __init__(self, node: int, num_nodes: int) -> None:
        super().__init__(f"node {node} not in graph with {num_nodes} nodes")
        self.node = node
        self.num_nodes = num_nodes


class CurveError(ReproError, ValueError):
    """Raised when a seed-probability curve violates the paper's axioms.

    A valid curve must satisfy ``p(0) == 0``, ``p(1) == 1``, be monotone
    non-decreasing and map ``[0, 1]`` into ``[0, 1]`` (Section 3 of the
    paper).
    """


class ConfigurationError(ReproError, ValueError):
    """Raised when a discount configuration is malformed.

    Examples: wrong length, discounts outside ``[0, 1]``, NaNs.
    """


class BudgetError(ConfigurationError):
    """Raised when a configuration or problem violates the budget constraint."""

    def __init__(self, spent: float, budget: float) -> None:
        super().__init__(f"configuration spends {spent:.6g} > budget {budget:.6g}")
        self.spent = spent
        self.budget = budget


class SolverError(ReproError, RuntimeError):
    """Raised when a solver cannot produce a feasible solution."""


class ConstraintError(SolverError):
    """Raised for malformed or unsatisfiable solver constraints.

    Examples: per-user caps outside ``[0, 1]``, an access set naming
    nodes outside the graph, a returned configuration that violates an
    active constraint.  Subclasses :class:`SolverError` so existing
    ``except SolverError`` call sites keep working.
    """


class ConvergenceWarning(UserWarning):
    """Warned when an iterative solver stops before reaching its tolerance."""


class EstimationError(ReproError, ValueError):
    """Raised for invalid estimation parameters (epsilon, delta, samples)."""


class StorageError(ReproError, ValueError):
    """Raised for hyper-graph storage failures: dtype-policy overflow
    (a member stream too wide for any supported width) or a torn /
    incomplete slab file that cannot be assembled.
    """


class DeadlineExceeded(ReproError, TimeoutError):
    """Raised when a run budget expires and no feasible partial result exists.

    Phases that *can* degrade gracefully (sampling, coordinate descent)
    never raise this — they return their best-so-far feasible result and
    tag it partial; only work that has produced nothing usable raises.
    """


class CheckpointError(ReproError, OSError):
    """Raised for unreadable, corrupt, or mismatched checkpoint data.

    ``path`` names the offending artifact file when the failure can be
    pinned to one (a truncated NPZ, a torn JSON document, a sidecar
    digest mismatch), so a multi-cell resume can report *which* cell is
    damaged — and quarantine exactly that file.
    """

    def __init__(self, message: str, path: "object" = None) -> None:
        super().__init__(message)
        self.path = None if path is None else str(path)


class PartialResultWarning(UserWarning):
    """Warned when a solver returns a truncated (deadline-expired) result."""


class WorkerPoolError(ReproError, RuntimeError):
    """Base class for unrecoverable failures of the supervised worker pool.

    The supervision layer (:mod:`repro.parallel.supervisor`) absorbs
    worker crashes, stragglers and transient chunk exceptions by
    restarting the pool and re-dispatching lost chunks; only when its
    bounded budgets are exhausted does one of the subclasses below
    escape.
    """


class PoisonChunkError(WorkerPoolError):
    """A chunk kept failing past its retry budget and could not be salvaged.

    Carries enough context to reproduce the failure deterministically:
    the chunk's index in the fixed plan (its seed stream is child
    ``chunk_index`` of the root seed, so re-running it is bit-identical)
    and one summary line per failed attempt.
    """

    def __init__(
        self,
        chunk_index: int,
        attempts: int,
        causes: "tuple[str, ...]" = (),
    ) -> None:
        detail = f"; attempts: {'; '.join(causes)}" if causes else ""
        super().__init__(
            f"chunk {chunk_index} failed {attempts} time(s) and exhausted its "
            f"retry budget{detail}"
        )
        self.chunk_index = int(chunk_index)
        self.attempts = int(attempts)
        self.causes = tuple(causes)


class PoolBrokenError(WorkerPoolError):
    """The process pool kept breaking past its restart budget.

    Raised only when serial in-process fallback is disabled
    (``max_pool_restarts`` exhausted with ``serial_fallback=False``);
    with the default policy the supervisor degrades to inline execution
    instead.
    """

    def __init__(self, restarts: int) -> None:
        super().__init__(
            f"process pool broke {restarts} time(s), exceeding the restart budget"
        )
        self.restarts = int(restarts)


class ObservabilityError(ReproError):
    """Raised for misuse of the tracing/metrics layer.

    Examples: registering one metric name as two different instrument
    kinds, or closing spans out of nesting order.  Instrumented pipeline
    code never triggers these; they guard direct API use.
    """
