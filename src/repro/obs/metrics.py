"""Counters, gauges and streaming histograms for the pipeline.

A :class:`MetricsRegistry` holds three instrument kinds, all keyed by a
flat dotted name (taxonomy in ``docs/observability.md``):

* :class:`Counter` — monotonically increasing integer totals
  (samples drawn, chunks dispatched, deadline polls, retry attempts,
  checkpoint hits).
* :class:`Gauge` — last-written scalar (hyper-edge count of the most
  recent build).
* :class:`Histogram` — a streaming distribution built on
  :class:`repro.utils.stats.RunningStat` (Welford/Chan) plus min/max,
  used for chunk sizes and per-phase sample counts.

Everything recorded is *content*, never wall-clock time, so for a fixed
seed a registry snapshot is bit-identical at every worker count —
timings belong to spans (:mod:`repro.obs.tracer`) and
:class:`~repro.utils.timing.TimingBreakdown`.

Registries nest: ``solve`` records into a fresh registry so its
``extras["metrics"]`` snapshot is independent of history, then
:meth:`MetricsRegistry.merge` folds the local registry into whatever the
caller had installed (see :func:`repro.obs.context.observe`).  The
default registry is :data:`NULL_METRICS`, whose instruments are shared
no-op singletons.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Optional, Union

from repro.exceptions import ObservabilityError
from repro.utils.stats import RunningStat

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
]

Number = Union[int, float]


class Counter:
    """A monotonically non-decreasing integer total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        amount = int(amount)
        if amount < 0:
            raise ObservabilityError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ObservabilityError(f"gauge {self.name!r} must be finite, got {value}")
        self.value = value


class Histogram:
    """Streaming distribution: Welford mean/variance plus min/max."""

    __slots__ = ("name", "stat", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.stat = RunningStat()
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        self.stat.add(value)  # rejects non-finite values
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def count(self) -> int:
        return self.stat.count

    def merge_from(self, other: "Histogram") -> None:
        self.stat.merge(other.stat)
        for bound, pick in (("min", min), ("max", max)):
            theirs = getattr(other, bound)
            if theirs is not None:
                ours = getattr(self, bound)
                setattr(self, bound, theirs if ours is None else pick(ours, theirs))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe summary with a fixed key set.

        ``stddev`` is reported as 0.0 below two observations (where the
        sample deviation is undefined) so snapshots stay NaN-free and
        comparable with ``==``.
        """
        count = self.stat.count
        return {
            "count": count,
            "mean": self.stat.mean if count else None,
            "stddev": self.stat.stddev if count >= 2 else (0.0 if count else None),
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    >>> registry = MetricsRegistry()
    >>> registry.inc("rrset.sampled_total", 128)
    >>> registry.observe("rrset.chunk_items", 64.0)
    >>> registry.counter("rrset.sampled_total").value
    128
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access -------------------------------------------------

    def _claim(self, name: str, table: Dict[str, Any], kind: str):
        name = str(name)
        for other_kind, other in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other is not table and name in other:
                raise ObservabilityError(
                    f"metric {name!r} already registered as a {other_kind}, "
                    f"cannot reuse it as a {kind}"
                )
        return name

    def counter(self, name: str) -> Counter:
        name = self._claim(name, self._counters, "counter")
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        name = self._claim(name, self._gauges, "gauge")
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        name = self._claim(name, self._histograms, "histogram")
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- one-shot conveniences (the instrumented call sites use these) -----

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Number) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: Number) -> None:
        self.histogram(name).observe(value)

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry: counters add, gauges take
        the other's latest value, histograms merge via Chan's update."""
        if isinstance(other, NullMetrics):
            return
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            if gauge.value is not None:
                self.gauge(name).set(gauge.value)
        for name, histogram in other._histograms.items():
            self.histogram(name).merge_from(histogram)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-safe, deterministically ordered dump of every instrument."""
        return {
            "counters": {n: self._counters[n].value for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
            "histograms": {
                n: self._histograms[n].snapshot() for n in sorted(self._histograms)
            },
        }

    def export_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: Number) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: Number) -> None:
        return None


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class NullMetrics(MetricsRegistry):
    """Default registry: constant-time no-ops, records nothing."""

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def inc(self, name: str, amount: int = 1) -> None:
        return None

    def set_gauge(self, name: str, value: Number) -> None:
        return None

    def observe(self, name: str, value: Number) -> None:
        return None

    def merge(self, other: MetricsRegistry) -> None:
        return None


NULL_METRICS = NullMetrics()
