"""Nested span tracing with deterministic content and JSONL export.

A :class:`Tracer` records a tree of *spans* — one per pipeline phase
(``rrset.sample``, ``solver.cd``, ...) — each carrying:

* **attrs** — deterministic content set at creation or via
  :meth:`Span.set`.  For a fixed seed these are bit-identical at every
  worker count, so two traces of the same run can be compared with
  :meth:`Tracer.canonical` (the engine's determinism guarantee extended
  to its telemetry).
* **events** — an ordered list of point annotations (one per chunk,
  grid point, or CD round).  The parallel pool collects chunk results in
  chunk order regardless of completion order, and span events for those
  chunks are emitted from that ordered list, so event order is
  deterministic too.
* **runtime** — execution details that legitimately vary between runs
  (wall-clock timings, resolved worker counts, host facts), set via
  :meth:`Span.note`.  Excluded from :meth:`Span.canonical`.

The default tracer everywhere is :data:`NULL_TRACER`, whose spans are a
shared no-op singleton; the instrumented hot paths cost a handful of
attribute lookups per *chunk* (never per sample), which the overhead
guard in ``tests/obs/test_overhead.py`` pins below 2%.

Export is JSON Lines: one object per span with ``id``/``parent`` links.
Pass ``sink=`` to stream each finished root tree straight to disk (used
by the ``REPRO_TRACE`` environment hook so a whole test-suite run never
accumulates spans in memory).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, TextIO, Union

import numpy as np

from repro.exceptions import ObservabilityError

__all__ = ["Span", "Tracer", "NullSpan", "NullTracer", "NULL_SPAN", "NULL_TRACER"]


def _clean(value: Any) -> Any:
    """Convert numpy scalars/arrays and tuples to JSON-native types."""
    # numpy scalars first: np.float64 subclasses float but is not
    # JSON-native, and json.dumps would serialize np.bool_ incorrectly.
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, np.ndarray):
        return [_clean(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    return repr(value)


class Span:
    """One node of a trace tree.  Created via :meth:`Tracer.span`."""

    __slots__ = ("name", "attrs", "events", "runtime", "children", "error", "start", "end")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = str(name)
        self.attrs = attrs
        self.events: List[Dict[str, Any]] = []
        self.runtime: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self.error: Optional[str] = None
        self.start: float = 0.0
        self.end: float = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach deterministic attributes (results, counts, flags)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> "Span":
        """Append an ordered point annotation (e.g. one per chunk)."""
        self.events.append({"name": str(name), "attrs": attrs})
        return self

    def note(self, **runtime: Any) -> "Span":
        """Attach execution details (timings, worker counts) that may
        differ between otherwise-identical runs; excluded from
        :meth:`canonical`."""
        self.runtime.update(runtime)
        return self

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def canonical(self) -> Dict[str, Any]:
        """Deterministic view: name, attrs, events, error, children —
        no timings, no runtime notes."""
        node: Dict[str, Any] = {
            "name": self.name,
            "attrs": _clean(self.attrs),
            "events": [
                {"name": e["name"], "attrs": _clean(e["attrs"])} for e in self.events
            ],
            "children": [child.canonical() for child in self.children],
        }
        if self.error is not None:
            node["error"] = self.error
        return node


class _SpanHandle:
    """Context manager binding one span to a tracer's active stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._start(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.error = exc_type.__name__
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Collects nested spans on a monotonic clock.

    >>> tracer = Tracer()
    >>> with tracer.span("outer", seed=7) as outer:
    ...     with tracer.span("inner") as inner:
    ...         _ = inner.event("chunk", index=0, produced=4)
    ...     _ = outer.set(done=True)
    >>> [root["name"] for root in tracer.canonical()]
    ['outer']
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        sink: Optional[Union[str, TextIO]] = None,
    ):
        self._clock = clock
        self._stack: List[Span] = []
        self._next_id = 0
        self.roots: List[Span] = []
        self._sink_path: Optional[str] = None
        self._sink_handle: Optional[TextIO] = None
        if isinstance(sink, str):
            self._sink_path = sink
        elif sink is not None:
            self._sink_handle = sink

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a nested span; use as a context manager."""
        return _SpanHandle(self, Span(name, attrs))

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    # -- lifecycle ---------------------------------------------------------

    def _start(self, span: Span) -> None:
        span.start = self._clock()
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} closed out of order (open: "
                f"{[s.name for s in self._stack]})"
            )
        span.end = self._clock()
        self._stack.pop()
        if not self._stack:
            if self._sink_path is not None or self._sink_handle is not None:
                self._write_root(span)
            else:
                self.roots.append(span)

    # -- export ------------------------------------------------------------

    def _span_line(self, span: Span, span_id: int, parent: Optional[int]) -> str:
        record = {
            "kind": "span",
            "id": span_id,
            "parent": parent,
            "name": span.name,
            "attrs": _clean(span.attrs),
            "events": [
                {"name": e["name"], "attrs": _clean(e["attrs"])} for e in span.events
            ],
            "error": span.error,
            "start_s": round(span.start, 6),
            "duration_s": round(span.duration, 6),
            "runtime": _clean(span.runtime),
        }
        return json.dumps(record, sort_keys=True)

    def _emit_tree(self, span: Span, parent: Optional[int], out: List[str]) -> None:
        span_id = self._next_id
        self._next_id += 1
        out.append(self._span_line(span, span_id, parent))
        for child in span.children:
            self._emit_tree(child, span_id, out)

    def _write_root(self, span: Span) -> None:
        if self._sink_handle is None:
            self._sink_handle = open(self._sink_path, "a", encoding="utf-8")
        lines: List[str] = []
        self._emit_tree(span, None, lines)
        self._sink_handle.write("\n".join(lines) + "\n")
        self._sink_handle.flush()

    def iter_jsonl(self) -> Iterator[str]:
        """JSONL lines (depth-first, ids assigned in emit order) for the
        accumulated root spans."""
        start_id = self._next_id
        try:
            for root in self.roots:
                lines: List[str] = []
                self._emit_tree(root, None, lines)
                yield from lines
        finally:
            self._next_id = start_id

    def export_jsonl(self, path: str) -> None:
        """Write every accumulated root tree to ``path`` as JSON Lines."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.iter_jsonl():
                handle.write(line + "\n")

    def canonical(self) -> List[Dict[str, Any]]:
        """Deterministic forest for cross-run/cross-worker comparison."""
        return [root.canonical() for root in self.roots]

    def close(self) -> None:
        """Flush and close a streaming sink (no-op otherwise)."""
        if self._sink_handle is not None:
            try:
                self._sink_handle.close()
            finally:
                self._sink_handle = None


class NullSpan:
    """Shared do-nothing span: every method is a constant-time no-op."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def event(self, name: str, **attrs: Any) -> "NullSpan":
        return self

    def note(self, **runtime: Any) -> "NullSpan":
        return self


NULL_SPAN = NullSpan()


class NullTracer:
    """Default tracer: hands out :data:`NULL_SPAN` and records nothing."""

    __slots__ = ()

    def span(self, name: str, **attrs: Any) -> NullSpan:
        return NULL_SPAN

    @property
    def current(self) -> None:
        return None

    @property
    def roots(self) -> List[Span]:
        return []

    def canonical(self) -> List[Dict[str, Any]]:
        return []

    def iter_jsonl(self) -> Iterator[str]:
        return iter(())

    def export_jsonl(self, path: str) -> None:
        open(path, "w", encoding="utf-8").close()

    def close(self) -> None:
        return None


NULL_TRACER = NullTracer()
