"""Ambient observability context: which tracer/metrics the pipeline uses.

Instrumented functions never take ``tracer=``/``metrics=`` parameters —
they call :func:`get_tracer` / :func:`get_metrics`, which resolve to
no-op singletons unless a caller installed real collectors::

    tracer, registry = Tracer(), MetricsRegistry()
    with observe(tracer=tracer, metrics=registry):
        solve(problem, "cd", num_hyperedges=2000, seed=7)
    tracer.export_jsonl("trace.jsonl")

Contexts nest, and on exit an overridden *metrics* registry is merged
into whatever was installed before it (counters add, histograms fold via
Chan's update), so scoped registries — ``solve`` keeps one per call to
build its ``extras["metrics"]`` snapshot — still accumulate into the
session totals.  Pass ``merge_up=False`` to suppress that.

The context is deliberately process-local and not inherited by pool
workers: chunk tasks are uninstrumented by design, and every span event
and counter is recorded coordinator-side from chunk-ordered results, so
traces and metric values are bit-identical at any worker count.

Environment hooks (read once, at first import):

* ``REPRO_TRACE=FILE`` — install a base tracer that streams every root
  span tree to ``FILE`` as JSONL (appending; flushed per tree).  Lets CI
  trace a whole test-suite run without touching the suite.
* ``REPRO_METRICS_OUT=FILE`` — install a base registry and dump its
  snapshot to ``FILE`` at interpreter exit.

Both hooks export from the bootstrapping process only (guarded by PID),
so forked pool workers never clobber the output files.
"""

from __future__ import annotations

import atexit
import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "ObsContext",
    "get_context",
    "get_tracer",
    "get_metrics",
    "observe",
    "TRACE_ENV_VAR",
    "METRICS_ENV_VAR",
]

TRACE_ENV_VAR = "REPRO_TRACE"
METRICS_ENV_VAR = "REPRO_METRICS_OUT"


class ObsContext:
    """An immutable (tracer, metrics) pair."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer, metrics):
        self.tracer = tracer
        self.metrics = metrics


_CURRENT = ObsContext(NULL_TRACER, NULL_METRICS)


def get_context() -> ObsContext:
    """The active observability context."""
    return _CURRENT


def get_tracer():
    """The active tracer (:data:`~repro.obs.tracer.NULL_TRACER` unless
    a caller installed one via :func:`observe`)."""
    return _CURRENT.tracer


def get_metrics():
    """The active metrics registry (no-op singleton by default)."""
    return _CURRENT.metrics


@contextmanager
def observe(
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
    merge_up: bool = True,
) -> Iterator[ObsContext]:
    """Install collectors for the duration of a ``with`` block.

    Omitted arguments inherit from the enclosing context.  On exit, an
    overridden ``metrics`` registry is merged into the previous one
    unless ``merge_up=False``.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = ObsContext(
        previous.tracer if tracer is None else tracer,
        previous.metrics if metrics is None else metrics,
    )
    try:
        yield _CURRENT
    finally:
        _CURRENT = previous
        if metrics is not None and merge_up:
            previous.metrics.merge(metrics)


_BOOTSTRAPPED = False


def _bootstrap_from_env() -> None:
    """Install base collectors requested via environment variables."""
    global _BOOTSTRAPPED, _CURRENT
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    trace_path = os.environ.get(TRACE_ENV_VAR)
    metrics_path = os.environ.get(METRICS_ENV_VAR)
    if not trace_path and not metrics_path:
        return
    owner_pid = os.getpid()
    tracer = Tracer(sink=trace_path) if trace_path else NULL_TRACER
    metrics = MetricsRegistry() if metrics_path else NULL_METRICS
    _CURRENT = ObsContext(tracer, metrics)

    def _flush() -> None:
        # Forked pool workers inherit the hook; only the process that
        # installed it may write the files.
        if os.getpid() != owner_pid:
            return
        if not isinstance(tracer, NullTracer):
            tracer.close()
        if metrics_path:
            metrics.export_json(metrics_path)

    atexit.register(_flush)


_bootstrap_from_env()
