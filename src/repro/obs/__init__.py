"""Observability layer: tracing spans + metrics registry.

Deterministic telemetry for the CIM pipeline — span *content* and metric
*values* are bit-identical across worker counts for a fixed seed, just
like the results they describe.  See ``docs/observability.md`` for the
span and metric taxonomy and usage recipes.
"""

from repro.obs.context import (
    METRICS_ENV_VAR,
    TRACE_ENV_VAR,
    ObsContext,
    get_context,
    get_metrics,
    get_tracer,
    observe,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, NullSpan, NullTracer, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NullSpan",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "ObsContext",
    "get_context",
    "get_tracer",
    "get_metrics",
    "observe",
    "TRACE_ENV_VAR",
    "METRICS_ENV_VAR",
]
