"""Checkpoint/resume for long experiment runs.

An experiment grid (Section 9: datasets x budgets x methods) can run for
hours; a crash at cell 47 must not discard cells 1–46.  A
:class:`CheckpointStore` is a directory of atomically-written snapshot
files under a *content key* — a hash of everything that determines the
run's output (dataset fingerprint, seed, parameters).  Resuming with the
same inputs finds the same key and reuses completed cells; changing *any*
input changes the key, so stale checkpoints can never leak into a
different experiment.

Snapshots are JSON for structured records and NPZ for arrays, both written
via write-temp-then-rename so a reader never sees a torn file.  Array
snapshots stream straight to disk (and hash in chunks on both write and
read): a multi-gigabyte cached hyper-graph is never double-buffered in
memory.

Integrity: every snapshot gets a ``<file>.sha256`` sidecar written after
the main file; loads verify the digest before parsing, so silent disk
corruption (bit rot, a partial copy, a crash between file and sidecar)
is caught as :class:`~repro.exceptions.CheckpointError` — with ``path``
naming the damaged artifact — instead of surfacing as a confusing parse
error hours into a resume.  Sidecar-less files (pre-integrity stores)
still load.  :meth:`CheckpointStore.salvage_json` /
:meth:`~CheckpointStore.salvage_arrays` turn "damaged" into "absent":
they quarantine the corrupt artifact (rename to ``*.quarantined``, kept
for forensics) and return ``None`` so the caller simply recomputes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro.exceptions import CheckpointError
from repro.obs.context import get_metrics

__all__ = ["CheckpointStore", "content_key"]

PathLike = Union[str, Path]

_CHECKPOINT_FORMAT = "repro.checkpoint.v1"


def _stream_digest(path: Path, chunk_bytes: int = 1 << 22) -> str:
    """sha256 of a file computed in fixed-size chunks (bounded memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_bytes)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _canonical(value) -> object:
    """Reduce ``value`` to JSON-stable primitives for hashing."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, np.ndarray):
        # dtype + shape + raw bytes: two arrays hash equal iff identical.
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()
        return {"__ndarray__": [str(value.dtype), list(value.shape), digest]}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, bytes):
        return {"__bytes__": hashlib.sha256(value).hexdigest()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise CheckpointError(
        f"cannot derive a stable content key from {type(value).__name__!r}; "
        "pass plain data (numbers, strings, arrays) — e.g. an integer seed "
        "instead of a Generator"
    )


def content_key(**parts) -> str:
    """A stable hex digest of the keyword parts (order-insensitive).

    >>> content_key(seed=1, budget=2.0) == content_key(budget=2.0, seed=1)
    True
    >>> content_key(seed=1) == content_key(seed=2)
    False
    """
    blob = json.dumps(_canonical(parts), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


class CheckpointStore:
    """A directory of named snapshots for one keyed run.

    Layout: ``<root>/<key>/<name>.json`` and ``<root>/<key>/<name>.npz``.
    Several runs (different keys) share one root without interference.
    """

    def __init__(self, root: PathLike, key: str) -> None:
        if not key or any(c in key for c in "/\\"):
            raise CheckpointError(f"invalid checkpoint key {key!r}")
        self.root = Path(root)
        self.key = key
        self.directory = self.root / key
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(f"cannot create checkpoint directory: {exc}") from exc

    # ------------------------------------------------------------------
    # integrity sidecars
    # ------------------------------------------------------------------
    @staticmethod
    def _sidecar_path(path: Path) -> Path:
        return path.with_name(path.name + ".sha256")

    def _write_sidecar(self, path: Path, data: bytes) -> None:
        self._write_sidecar_digest(path, hashlib.sha256(data).hexdigest())

    def _write_sidecar_digest(self, path: Path, digest: str) -> None:
        from repro.io.serialization import atomic_write_text

        try:
            atomic_write_text(self._sidecar_path(path), digest + "\n")
        except OSError as exc:
            raise CheckpointError(
                f"cannot write integrity sidecar for {path.name!r}: {exc}",
                path=self._sidecar_path(path),
            ) from exc

    def _verify(self, path: Path, name: str, data: bytes) -> None:
        """Check ``data`` against the sidecar digest, if one exists.

        A missing sidecar is accepted (stores written before integrity
        sidecars existed); a mismatch means the artifact — or the
        sidecar — changed after the write, and the snapshot cannot be
        trusted.
        """
        sidecar = self._sidecar_path(path)
        try:
            expected = sidecar.read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            return
        except OSError as exc:
            raise CheckpointError(
                f"cannot read integrity sidecar of checkpoint {name!r}: {exc}",
                path=sidecar,
            ) from exc
        actual = hashlib.sha256(data).hexdigest()
        if actual != expected:
            get_metrics().inc("checkpoint.integrity_failures_total")
            raise CheckpointError(
                f"checkpoint {name!r} failed integrity verification: "
                f"sha256 {actual[:12]}… does not match sidecar {expected[:12]}…",
                path=path,
            )

    def _verify_stream(self, path: Path, name: str) -> None:
        """Like :meth:`_verify` but hashing the file in chunks.

        Array snapshots can be hundreds of megabytes (a cached
        million-edge hyper-graph); verifying the streamed digest avoids
        ever holding a second in-memory copy of the payload.
        """
        sidecar = self._sidecar_path(path)
        try:
            expected = sidecar.read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            return
        except OSError as exc:
            raise CheckpointError(
                f"cannot read integrity sidecar of checkpoint {name!r}: {exc}",
                path=sidecar,
            ) from exc
        try:
            actual = _stream_digest(path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {name!r}: {exc}", path=path
            ) from exc
        if actual != expected:
            get_metrics().inc("checkpoint.integrity_failures_total")
            raise CheckpointError(
                f"checkpoint {name!r} failed integrity verification: "
                f"sha256 {actual[:12]}… does not match sidecar {expected[:12]}…",
                path=path,
            )

    # ------------------------------------------------------------------
    # JSON snapshots
    # ------------------------------------------------------------------
    def _json_path(self, name: str) -> Path:
        return self.directory / f"{name}.json"

    def has(self, name: str) -> bool:
        """Whether a JSON snapshot ``name`` exists."""
        return self._json_path(name).exists()

    def save_json(self, name: str, payload: Dict[str, object]) -> Path:
        """Atomically write a JSON snapshot (plus sidecar); returns its path."""
        from repro.io.serialization import atomic_write_text
        from repro.runtime.faults import maybe_inject

        maybe_inject("checkpoint.write")
        document = {"format": _CHECKPOINT_FORMAT, "key": self.key, "payload": payload}
        path = self._json_path(name)
        try:
            text = json.dumps(document, indent=2, sort_keys=True)
            atomic_write_text(path, text)
        except (OSError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"cannot write checkpoint {name!r}: {exc}", path=path
            ) from exc
        self._write_sidecar(path, text.encode("utf-8"))
        get_metrics().inc("checkpoint.writes_total")
        return path

    def load_json(self, name: str) -> Dict[str, object]:
        """Read a JSON snapshot; raises :class:`CheckpointError` when
        missing, torn, corrupted on disk, or written under a different
        key — carrying the offending file path."""
        path = self._json_path(name)
        try:
            raw = path.read_bytes()
        except FileNotFoundError as exc:
            raise CheckpointError(
                f"no checkpoint named {name!r} under {self.directory}", path=path
            ) from exc
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {name!r}: {exc}", path=path
            ) from exc
        self._verify(path, name, raw)
        try:
            document = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"corrupt checkpoint {name!r}: {exc}", path=path
            ) from exc
        if not isinstance(document, dict) or document.get("format") != _CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {name!r} is not a {_CHECKPOINT_FORMAT} document",
                path=path,
            )
        if document.get("key") != self.key:
            raise CheckpointError(
                f"checkpoint {name!r} belongs to run {document.get('key')!r}, "
                f"not {self.key!r}",
                path=path,
            )
        payload = document.get("payload")
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"checkpoint {name!r} has a malformed payload", path=path
            )
        get_metrics().inc("checkpoint.reads_total")
        return payload

    # ------------------------------------------------------------------
    # NPZ snapshots (arrays — e.g. a cached hyper-graph)
    # ------------------------------------------------------------------
    def _npz_path(self, name: str) -> Path:
        return self.directory / f"{name}.npz"

    def has_arrays(self, name: str) -> bool:
        """Whether an NPZ snapshot ``name`` exists."""
        return self._npz_path(name).exists()

    def save_arrays(self, name: str, **arrays: np.ndarray) -> Path:
        """Atomically write an NPZ snapshot (plus sidecar) of the arrays.

        The archive is streamed to a temporary file in the checkpoint
        directory and renamed into place, and its digest is computed by
        re-reading that file in chunks — the snapshot never exists as a
        second in-memory copy, which matters when the arrays are a
        multi-gigabyte hyper-graph.
        """
        from repro.runtime.faults import maybe_inject

        maybe_inject("checkpoint.write")
        path = self._npz_path(name)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{name}.", suffix=".npz.tmp"
        )
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            digest = _stream_digest(tmp)
            os.replace(tmp, path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(
                f"cannot write checkpoint {name!r}: {exc}", path=path
            ) from exc
        self._write_sidecar_digest(path, digest)
        get_metrics().inc("checkpoint.writes_total")
        return path

    def load_arrays(self, name: str) -> Dict[str, np.ndarray]:
        """Read an NPZ snapshot back as a dict of arrays.

        Wraps every decoder failure mode — a truncated ZIP container
        (``zipfile.BadZipFile``), a missing archive member
        (``KeyError``), a torn deflate stream (``zlib.error``,
        ``EOFError``) — as :class:`CheckpointError` with the file path.
        """
        path = self._npz_path(name)
        if not path.exists():
            raise CheckpointError(
                f"no checkpoint named {name!r} under {self.directory}", path=path
            )
        self._verify_stream(path, name)
        try:
            with np.load(path) as data:
                arrays = {key: data[key] for key in data.files}
        except (
            OSError,
            ValueError,
            KeyError,
            EOFError,
            zipfile.BadZipFile,
            zlib.error,
        ) as exc:
            raise CheckpointError(
                f"corrupt checkpoint {name!r}: {exc}", path=path
            ) from exc
        get_metrics().inc("checkpoint.reads_total")
        return arrays

    # ------------------------------------------------------------------
    # quarantine and salvage
    # ------------------------------------------------------------------
    def quarantine(self, name: str) -> List[Path]:
        """Move every artifact of snapshot ``name`` aside as ``*.quarantined``.

        The JSON and NPZ halves of a snapshot (and their sidecars) form
        one logical unit, so all of them are quarantined together: a
        half-trusted snapshot is worse than an absent one.  The renamed
        files are kept for forensics and returned; :meth:`has` /
        :meth:`has_arrays` report the snapshot as absent afterwards, so
        resume logic falls through to recomputation.
        """
        moved: List[Path] = []
        for path in (self._json_path(name), self._npz_path(name)):
            for artifact in (path, self._sidecar_path(path)):
                if not artifact.exists():
                    continue
                target = artifact.with_name(artifact.name + ".quarantined")
                try:
                    artifact.replace(target)
                except OSError as exc:
                    raise CheckpointError(
                        f"cannot quarantine checkpoint {name!r}: {exc}",
                        path=artifact,
                    ) from exc
                moved.append(target)
        if moved:
            get_metrics().inc("checkpoint.quarantined_total")
        return moved

    def salvage_json(self, name: str) -> Optional[Dict[str, object]]:
        """Best-effort :meth:`load_json`: damaged → quarantine → ``None``.

        Returns the payload when the snapshot loads and verifies, and
        ``None`` when it is absent *or* corrupt — in the latter case the
        snapshot's artifacts are quarantined first, so the caller's
        "recompute when ``None``" branch also heals the store.
        """
        if not self.has(name):
            return None
        try:
            return self.load_json(name)
        except CheckpointError:
            self.quarantine(name)
            return None

    def salvage_arrays(self, name: str) -> Optional[Dict[str, np.ndarray]]:
        """Best-effort :meth:`load_arrays`; see :meth:`salvage_json`."""
        if not self.has_arrays(name):
            return None
        try:
            return self.load_arrays(name)
        except CheckpointError:
            self.quarantine(name)
            return None

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def names(self) -> Iterator[str]:
        """Names of all JSON snapshots present (sorted)."""
        return iter(sorted(p.stem for p in self.directory.glob("*.json")))

    def clear(self) -> None:
        """Delete every snapshot of this run (JSON, NPZ, sidecars,
        quarantined artifacts)."""
        for pattern in (
            "*.json",
            "*.npz",
            "*.sha256",
            "*.quarantined",
            ".*.npz.tmp",
        ):
            for path in self.directory.glob(pattern):
                path.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({str(self.directory)!r})"
