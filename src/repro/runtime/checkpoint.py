"""Checkpoint/resume for long experiment runs.

An experiment grid (Section 9: datasets x budgets x methods) can run for
hours; a crash at cell 47 must not discard cells 1–46.  A
:class:`CheckpointStore` is a directory of atomically-written snapshot
files under a *content key* — a hash of everything that determines the
run's output (dataset fingerprint, seed, parameters).  Resuming with the
same inputs finds the same key and reuses completed cells; changing *any*
input changes the key, so stale checkpoints can never leak into a
different experiment.

Snapshots are JSON for structured records and NPZ for arrays, both written
via write-temp-then-rename (:func:`repro.io.serialization.atomic_write_bytes`),
so a reader never sees a torn file.
"""

from __future__ import annotations

import hashlib
import io as _io
import json
from pathlib import Path
from typing import Dict, Iterator, Union

import numpy as np

from repro.exceptions import CheckpointError
from repro.obs.context import get_metrics

__all__ = ["CheckpointStore", "content_key"]

PathLike = Union[str, Path]

_CHECKPOINT_FORMAT = "repro.checkpoint.v1"


def _canonical(value) -> object:
    """Reduce ``value`` to JSON-stable primitives for hashing."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, np.ndarray):
        # dtype + shape + raw bytes: two arrays hash equal iff identical.
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()
        return {"__ndarray__": [str(value.dtype), list(value.shape), digest]}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, bytes):
        return {"__bytes__": hashlib.sha256(value).hexdigest()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise CheckpointError(
        f"cannot derive a stable content key from {type(value).__name__!r}; "
        "pass plain data (numbers, strings, arrays) — e.g. an integer seed "
        "instead of a Generator"
    )


def content_key(**parts) -> str:
    """A stable hex digest of the keyword parts (order-insensitive).

    >>> content_key(seed=1, budget=2.0) == content_key(budget=2.0, seed=1)
    True
    >>> content_key(seed=1) == content_key(seed=2)
    False
    """
    blob = json.dumps(_canonical(parts), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


class CheckpointStore:
    """A directory of named snapshots for one keyed run.

    Layout: ``<root>/<key>/<name>.json`` and ``<root>/<key>/<name>.npz``.
    Several runs (different keys) share one root without interference.
    """

    def __init__(self, root: PathLike, key: str) -> None:
        if not key or any(c in key for c in "/\\"):
            raise CheckpointError(f"invalid checkpoint key {key!r}")
        self.root = Path(root)
        self.key = key
        self.directory = self.root / key
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(f"cannot create checkpoint directory: {exc}") from exc

    # ------------------------------------------------------------------
    # JSON snapshots
    # ------------------------------------------------------------------
    def _json_path(self, name: str) -> Path:
        return self.directory / f"{name}.json"

    def has(self, name: str) -> bool:
        """Whether a JSON snapshot ``name`` exists."""
        return self._json_path(name).exists()

    def save_json(self, name: str, payload: Dict[str, object]) -> Path:
        """Atomically write a JSON snapshot; returns its path."""
        from repro.io.serialization import atomic_write_text
        from repro.runtime.faults import maybe_inject

        maybe_inject("checkpoint.write")
        document = {"format": _CHECKPOINT_FORMAT, "key": self.key, "payload": payload}
        path = self._json_path(name)
        try:
            atomic_write_text(path, json.dumps(document, indent=2, sort_keys=True))
        except (OSError, TypeError, ValueError) as exc:
            raise CheckpointError(f"cannot write checkpoint {name!r}: {exc}") from exc
        get_metrics().inc("checkpoint.writes_total")
        return path

    def load_json(self, name: str) -> Dict[str, object]:
        """Read a JSON snapshot; raises :class:`CheckpointError` when
        missing, torn, or written under a different key."""
        path = self._json_path(name)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise CheckpointError(f"no checkpoint named {name!r} under {self.directory}") from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"corrupt checkpoint {name!r}: {exc}") from exc
        if not isinstance(document, dict) or document.get("format") != _CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {name!r} is not a {_CHECKPOINT_FORMAT} document"
            )
        if document.get("key") != self.key:
            raise CheckpointError(
                f"checkpoint {name!r} belongs to run {document.get('key')!r}, "
                f"not {self.key!r}"
            )
        payload = document.get("payload")
        if not isinstance(payload, dict):
            raise CheckpointError(f"checkpoint {name!r} has a malformed payload")
        get_metrics().inc("checkpoint.reads_total")
        return payload

    # ------------------------------------------------------------------
    # NPZ snapshots (arrays — e.g. a cached hyper-graph)
    # ------------------------------------------------------------------
    def _npz_path(self, name: str) -> Path:
        return self.directory / f"{name}.npz"

    def has_arrays(self, name: str) -> bool:
        """Whether an NPZ snapshot ``name`` exists."""
        return self._npz_path(name).exists()

    def save_arrays(self, name: str, **arrays: np.ndarray) -> Path:
        """Atomically write an NPZ snapshot of the named arrays."""
        from repro.io.serialization import atomic_write_bytes
        from repro.runtime.faults import maybe_inject

        maybe_inject("checkpoint.write")
        buffer = _io.BytesIO()
        np.savez(buffer, **arrays)
        path = self._npz_path(name)
        try:
            atomic_write_bytes(path, buffer.getvalue())
        except OSError as exc:
            raise CheckpointError(f"cannot write checkpoint {name!r}: {exc}") from exc
        get_metrics().inc("checkpoint.writes_total")
        return path

    def load_arrays(self, name: str) -> Dict[str, np.ndarray]:
        """Read an NPZ snapshot back as a dict of arrays."""
        path = self._npz_path(name)
        try:
            with np.load(path) as data:
                arrays = {key: data[key] for key in data.files}
        except FileNotFoundError as exc:
            raise CheckpointError(f"no checkpoint named {name!r} under {self.directory}") from exc
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"corrupt checkpoint {name!r}: {exc}") from exc
        get_metrics().inc("checkpoint.reads_total")
        return arrays

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def names(self) -> Iterator[str]:
        """Names of all JSON snapshots present (sorted)."""
        return iter(sorted(p.stem for p in self.directory.glob("*.json")))

    def clear(self) -> None:
        """Delete every snapshot of this run (both JSON and NPZ)."""
        for path in self.directory.glob("*.json"):
            path.unlink(missing_ok=True)
        for path in self.directory.glob("*.npz"):
            path.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({str(self.directory)!r})"
