"""Seeded fault injection for resilience testing.

The retry/checkpoint/deadline machinery is only trustworthy if it is
exercised against real failures, and real failures are hard to schedule.
A :class:`FaultInjector` makes them schedulable: library call sites are
instrumented with a cheap :func:`maybe_inject("site.name") <maybe_inject>`
probe, a no-op in production (one global ``None`` check).  Inside a
``with FaultInjector(...)`` block the probe consults the injector and, on a
deterministic seeded schedule, raises :class:`InjectedFault` or sleeps —
simulating crashes and hangs exactly where they would occur.

Two scheduling modes compose:

* ``failures={"site": [0, 2]}`` — fail the 1st and 3rd invocation of a
  site (exact, for targeted tests like "kill the grid after cell one"), and
* ``rate=0.2, seed=7`` — fail each probed invocation with probability 0.2
  from a seeded stream (for soak-style tests).

Instrumented sites in the library include ``datasets.load_dataset``,
``runner.evaluate`` (Monte-Carlo scoring), ``runner.cell`` (one experiment
grid cell) and ``checkpoint.write``.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional, Sequence

from repro.exceptions import ReproError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["InjectedFault", "FaultInjector", "maybe_inject", "active_injector"]


class InjectedFault(ReproError, RuntimeError):
    """The synthetic failure raised by an active :class:`FaultInjector`."""

    def __init__(self, site: str, invocation: int) -> None:
        super().__init__(f"injected fault at {site!r} (invocation {invocation})")
        self.site = site
        self.invocation = invocation


# The currently active injector; module-global so instrumented call sites
# need no plumbing.  Nested injectors stack (inner wins, outer restored).
_ACTIVE: Optional["FaultInjector"] = None


def active_injector() -> Optional["FaultInjector"]:
    """The injector currently armed by a ``with`` block, if any."""
    return _ACTIVE


def maybe_inject(site: str) -> None:
    """Fault-injection probe; place at interruptible call sites.

    No-op unless a :class:`FaultInjector` context is active *and* its
    schedule says this invocation of ``site`` should fail.
    """
    if _ACTIVE is not None:
        _ACTIVE.fire(site)


class FaultInjector:
    """Deterministic, seeded fault schedule armed as a context manager.

    Parameters
    ----------
    failures:
        Map of site name to the zero-based invocation indices that should
        raise (e.g. ``{"runner.cell": [1]}`` kills the second grid cell).
    rate:
        Probability that *any* probed invocation raises, drawn from a
        stream seeded by ``seed`` (independent of the explicit schedule).
    seed:
        Seed for the ``rate`` stream; same seed, same fault pattern.
    hang_sites / hang_seconds:
        Sites that should *sleep* instead of raising — simulating a stall
        so deadline-based cancellation can be exercised end to end.
    """

    def __init__(
        self,
        failures: Optional[Dict[str, Sequence[int]]] = None,
        rate: float = 0.0,
        seed: SeedLike = None,
        hang_sites: Iterable[str] = (),
        hang_seconds: float = 0.0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must lie in [0, 1], got {rate}")
        self.failures = {
            site: frozenset(int(i) for i in indices)
            for site, indices in (failures or {}).items()
        }
        self.rate = float(rate)
        self.rng = as_generator(seed)
        self.hang_sites = frozenset(hang_sites)
        self.hang_seconds = float(hang_seconds)
        #: Invocation counters per site (public: tests assert on them).
        self.invocations: Dict[str, int] = {}
        #: Faults actually fired, as ``(site, invocation)`` pairs.
        self.fired: list[tuple[str, int]] = []
        self._previous: Optional["FaultInjector"] = None

    # ------------------------------------------------------------------
    # context management
    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def fire(self, site: str) -> None:
        """Called by :func:`maybe_inject`; raises or hangs per schedule."""
        invocation = self.invocations.get(site, 0)
        self.invocations[site] = invocation + 1

        scheduled = invocation in self.failures.get(site, ())
        random_hit = self.rate > 0.0 and self.rng.random() < self.rate
        if not (scheduled or random_hit):
            return

        self.fired.append((site, invocation))
        if site in self.hang_sites:
            time.sleep(self.hang_seconds)
            return
        raise InjectedFault(site, invocation)

    def count(self, site: str) -> int:
        """How many times ``site`` has been probed while armed."""
        return self.invocations.get(site, 0)
