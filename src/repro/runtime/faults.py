"""Seeded fault injection for resilience testing.

The retry/checkpoint/deadline machinery is only trustworthy if it is
exercised against real failures, and real failures are hard to schedule.
A :class:`FaultInjector` makes them schedulable: library call sites are
instrumented with a cheap :func:`maybe_inject("site.name") <maybe_inject>`
probe, a no-op in production (one global ``None`` check).  Inside a
``with FaultInjector(...)`` block the probe consults the injector and, on a
deterministic seeded schedule, raises :class:`InjectedFault` or sleeps —
simulating crashes and hangs exactly where they would occur.

Two scheduling modes compose:

* ``failures={"site": [0, 2]}`` — fail the 1st and 3rd invocation of a
  site (exact, for targeted tests like "kill the grid after cell one"), and
* ``rate=0.2, seed=7`` — fail each probed invocation with probability 0.2
  from a seeded stream (for soak-style tests).

Instrumented sites in the library include ``datasets.load_dataset``,
``runner.evaluate`` (Monte-Carlo scoring), ``runner.cell`` (one experiment
grid cell) and ``checkpoint.write``.

Process-level faults
--------------------
Coordinator-side raises cannot exercise the *supervised pool*
(:mod:`repro.parallel.supervisor`): a worker OOM-kill looks nothing like
an exception in the parent.  ``process_faults`` therefore schedules
faults that execute **inside the worker process** handling a chunk:

* ``"kill"`` — ``SIGKILL`` the worker (the pool breaks, exactly like an
  OOM kill),
* ``"exit"`` — ``os._exit`` the worker (abrupt interpreter death),
* ``"hang"`` — sleep ``process_hang_seconds`` before doing the work (a
  straggler, for soft-timeout re-dispatch testing), and
* ``"raise"`` — raise :class:`InjectedFault` from the chunk task (a
  poison chunk).

The schedule is keyed by *chunk index within one dispatch plan*, and the
directive travels with the chunk submission (planned coordinator-side at
dispatch time via :func:`planned_process_fault`), so it is deterministic
under any pool start method and never depends on which worker picks the
chunk up.  By default a directive fires only on attempt 0, so the
supervisor's re-dispatch of the lost chunk succeeds; pass a wider
``process_fault_attempts`` to build repeat offenders (poison chunks).
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import time
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "InjectedFault",
    "FaultInjector",
    "maybe_inject",
    "active_injector",
    "planned_process_fault",
    "execute_process_fault",
    "maybe_inject_process",
    "PROCESS_FAULT_MODES",
]

#: Directives accepted in ``FaultInjector(process_faults=...)`` schedules.
PROCESS_FAULT_MODES = ("kill", "exit", "hang", "raise")


class InjectedFault(ReproError, RuntimeError):
    """The synthetic failure raised by an active :class:`FaultInjector`."""

    def __init__(self, site: str, invocation: int) -> None:
        super().__init__(f"injected fault at {site!r} (invocation {invocation})")
        self.site = site
        self.invocation = invocation

    def __reduce__(self):
        # Rebuild from the original arguments: the default reduction would
        # re-call __init__ with the formatted message and fail, breaking
        # the worker→coordinator pickle path the supervisor relies on.
        return (type(self), (self.site, self.invocation))


# The currently active injector; module-global so instrumented call sites
# need no plumbing.  Nested injectors stack (inner wins, outer restored).
_ACTIVE: Optional["FaultInjector"] = None


def active_injector() -> Optional["FaultInjector"]:
    """The injector currently armed by a ``with`` block, if any."""
    return _ACTIVE


def maybe_inject(site: str) -> None:
    """Fault-injection probe; place at interruptible call sites.

    No-op unless a :class:`FaultInjector` context is active *and* its
    schedule says this invocation of ``site`` should fail.
    """
    if _ACTIVE is not None:
        _ACTIVE.fire(site)


def planned_process_fault(
    site: str, chunk_index: int, attempt: int
) -> Optional[Tuple[str, float]]:
    """The worker-side fault directive for one chunk dispatch, if any.

    Consulted by the pool coordinator when it submits chunk
    ``chunk_index`` of ``site``'s plan for the ``attempt``-th time;
    returns ``(directive, hang_seconds)`` or ``None``.  The directive is
    shipped with the chunk and executed by
    :func:`execute_process_fault` inside the worker, which keeps the
    schedule deterministic regardless of worker scheduling or pool start
    method.
    """
    if _ACTIVE is None:
        return None
    return _ACTIVE.process_fault(site, chunk_index, attempt)


def execute_process_fault(directive: str, hang_seconds: float) -> None:
    """Carry out a process-level fault directive (runs *in the worker*).

    ``kill`` and ``exit`` never return; ``hang`` sleeps and returns so
    the chunk proceeds as a straggler; ``raise`` raises
    :class:`InjectedFault`.
    """
    if directive == "kill":
        sigkill = getattr(signal, "SIGKILL", None)
        if sigkill is not None:
            os.kill(os.getpid(), sigkill)
        os._exit(137)  # no SIGKILL on this platform: same abrupt death
    if directive == "exit":
        os._exit(17)
    if directive == "hang":
        time.sleep(hang_seconds)
        return
    if directive == "raise":
        raise InjectedFault("process.chunk", 0)
    raise ReproError(f"unknown process fault directive {directive!r}")


def maybe_inject_process(site: str, chunk_index: int, attempt: int = 0) -> None:
    """Worker-side process-fault probe for instrumented *interior* sites.

    :func:`planned_process_fault` covers faults at chunk dispatch (the
    directive executes before the chunk task runs).  Some chaos scenarios
    need the fault *inside* the task — e.g. killing a worker between the
    two file writes of a slab chunk — so call sites there probe the
    schedule directly with this helper, keyed by the same
    ``(site, chunk_index, attempt)`` triple.  It consults the injector
    global of *this* process: a no-op in production and under the
    ``spawn`` start method; under ``fork`` (the Linux default) workers
    created inside the ``with`` block inherit the armed injector, so the
    directive executes deterministically in whichever worker handles the
    chunk.  Pass ``attempt > 0`` on re-execution so the default
    ``process_fault_attempts=(0,)`` schedule lets retries through.
    """
    planned = planned_process_fault(site, chunk_index, attempt)
    if planned is not None:
        execute_process_fault(*planned)


class FaultInjector:
    """Deterministic, seeded fault schedule armed as a context manager.

    Parameters
    ----------
    failures:
        Map of site name to the zero-based invocation indices that should
        raise (e.g. ``{"runner.cell": [1]}`` kills the second grid cell).
    rate:
        Probability that *any* probed invocation raises, drawn from a
        stream seeded by ``seed`` (independent of the explicit schedule).
    seed:
        Seed for the ``rate`` stream; same seed, same fault pattern.
    hang_sites / hang_seconds:
        Sites that should *sleep* instead of raising — simulating a stall
        so deadline-based cancellation can be exercised end to end.
    process_faults:
        Map of site name to ``{chunk_index: directive}`` — worker-side
        faults executed by the process handling that chunk of the site's
        dispatch plan.  Directives: :data:`PROCESS_FAULT_MODES`.
    process_hang_seconds:
        Sleep length of the ``"hang"`` directive.
    process_fault_attempts:
        Dispatch attempts (0-based) on which a process directive fires;
        the default ``(0,)`` faults only the first dispatch, so the
        supervisor's retry recovers.  Widen it to simulate poison chunks
        that fail every re-dispatch.
    """

    def __init__(
        self,
        failures: Optional[Dict[str, Sequence[int]]] = None,
        rate: float = 0.0,
        seed: SeedLike = None,
        hang_sites: Iterable[str] = (),
        hang_seconds: float = 0.0,
        process_faults: Optional[Mapping[str, Mapping[int, str]]] = None,
        process_hang_seconds: float = 0.0,
        process_fault_attempts: Sequence[int] = (0,),
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must lie in [0, 1], got {rate}")
        self.failures = {
            site: frozenset(int(i) for i in indices)
            for site, indices in (failures or {}).items()
        }
        self.rate = float(rate)
        self.rng = as_generator(seed)
        self.hang_sites = frozenset(hang_sites)
        self.hang_seconds = float(hang_seconds)
        self.process_faults: Dict[str, Dict[int, str]] = {}
        for site, plan in (process_faults or {}).items():
            for chunk, directive in plan.items():
                if directive not in PROCESS_FAULT_MODES:
                    raise ValueError(
                        f"unknown process fault directive {directive!r} for "
                        f"{site!r}; choose from {PROCESS_FAULT_MODES}"
                    )
            self.process_faults[site] = {int(c): d for c, d in plan.items()}
        self.process_hang_seconds = float(process_hang_seconds)
        self.process_fault_attempts = frozenset(int(a) for a in process_fault_attempts)
        #: Invocation counters per site (public: tests assert on them).
        self.invocations: Dict[str, int] = {}
        #: Faults actually fired, as ``(site, invocation)`` pairs.
        self.fired: list[tuple[str, int]] = []
        #: Process directives handed out, as ``(site, chunk, attempt, directive)``.
        #: Coordinator-planned directives land here immediately; directives
        #: fired by :func:`maybe_inject_process` inside a forked worker are
        #: recorded via marker files and folded in when the ``with`` block
        #: exits (a worker's memory dies with it — often by design).
        self.process_fired: list[tuple[str, int, int, str]] = []
        self._previous: Optional["FaultInjector"] = None
        self._owner_pid = os.getpid()
        self._evidence_dir: Optional[str] = None

    # ------------------------------------------------------------------
    # context management
    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        global _ACTIVE
        self._previous = _ACTIVE
        self._evidence_dir = tempfile.mkdtemp(prefix="repro-fault-evidence-")
        _ACTIVE = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None
        self._absorb_worker_evidence()

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def fire(self, site: str) -> None:
        """Called by :func:`maybe_inject`; raises or hangs per schedule."""
        invocation = self.invocations.get(site, 0)
        self.invocations[site] = invocation + 1

        scheduled = invocation in self.failures.get(site, ())
        random_hit = self.rate > 0.0 and self.rng.random() < self.rate
        if not (scheduled or random_hit):
            return

        self.fired.append((site, invocation))
        if site in self.hang_sites:
            time.sleep(self.hang_seconds)
            return
        raise InjectedFault(site, invocation)

    def process_fault(
        self, site: str, chunk_index: int, attempt: int
    ) -> Optional[Tuple[str, float]]:
        """Directive for dispatching chunk ``chunk_index`` on ``attempt``.

        Planned coordinator-side (see :func:`planned_process_fault`); the
        returned ``(directive, hang_seconds)`` travels with the chunk
        submission and is executed worker-side.
        """
        directive = self.process_faults.get(site, {}).get(int(chunk_index))
        if directive is None or int(attempt) not in self.process_fault_attempts:
            return None
        record = (site, int(chunk_index), int(attempt), directive)
        self.process_fired.append(record)
        if self._evidence_dir is not None and os.getpid() != self._owner_pid:
            # Fired in a forked worker: this object's memory is a copy the
            # coordinator never sees (and the directive may be about to
            # SIGKILL us), so leave a marker file for __exit__ to collect.
            self._write_worker_evidence(record)
        return directive, self.process_hang_seconds

    def _write_worker_evidence(self, record: tuple[str, int, int, str]) -> None:
        name = "::".join(str(part) for part in record)
        try:
            with open(os.path.join(self._evidence_dir, name), "w"):
                pass
        except OSError:
            pass  # evidence is best-effort; the fault itself still fires

    def _absorb_worker_evidence(self) -> None:
        directory, self._evidence_dir = self._evidence_dir, None
        if directory is None:
            return
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return
        for name in names:
            parts = name.rsplit("::", 3)
            if len(parts) != 4:
                continue
            record = (parts[0], int(parts[1]), int(parts[2]), parts[3])
            if record not in self.process_fired:
                self.process_fired.append(record)
        shutil.rmtree(directory, ignore_errors=True)

    def count(self, site: str) -> int:
        """How many times ``site`` has been probed while armed."""
        return self.invocations.get(site, 0)
