"""Cooperative deadlines for long-running pipelines.

Every expensive phase of the library — RR-set sampling (Theorem 9),
coordinate descent (Algorithm 1), the UD grid search — is an iterative
loop whose iterations are individually cheap.  A :class:`Deadline` is a
small object threaded through those loops; each loop polls it at iteration
boundaries and, on expiry, stops and returns its best-so-far *feasible*
result instead of raising.  This is the "anytime" execution substrate the
budget-saving CIM literature assumes.

Deadlines are cooperative (never signal-based) so partial results are
always consistent: a loop is only ever interrupted between iterations,
never inside one.

Clocks are injectable.  Production code uses ``time.monotonic``; tests use
:class:`ManualClock` to expire a deadline after an exact number of polls,
which makes "expires mid-descent" scenarios deterministic.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Iterator, Optional, Union

from repro.exceptions import DeadlineExceeded

__all__ = [
    "Deadline",
    "RunBudget",
    "ManualClock",
    "as_deadline",
    "deadline_iter",
    "DeadlineLike",
]


class ManualClock:
    """A fake monotonic clock for deterministic deadline tests.

    Each call to the clock returns the current time and then advances it by
    ``tick`` seconds, so a ``Deadline`` polled through a ``ManualClock``
    expires after a *known number of polls* regardless of wall time.

    >>> clock = ManualClock(tick=1.0)
    >>> deadline = Deadline.after(2.5, clock=clock)
    >>> [deadline.expired() for _ in range(4)]
    [False, False, True, True]
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self.now = float(start)
        self.tick = float(tick)

    def __call__(self) -> float:
        current = self.now
        self.now += self.tick
        return current

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``."""
        self.now += float(seconds)


class Deadline:
    """A point in (monotonic) time after which work should wind down.

    A ``Deadline`` is shared by reference: the solver facade creates one
    and hands the *same object* to hyper-graph construction, the warm-start
    solver and the descent loop, so the whole pipeline — not each phase
    separately — respects one wall-clock budget.
    """

    __slots__ = ("_expires_at", "_clock", "polls")

    def __init__(
        self,
        expires_at: float = math.inf,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._expires_at = float(expires_at)
        self._clock = clock
        #: Number of times this deadline has been polled (diagnostic).
        self.polls = 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        if not seconds >= 0.0:  # also rejects NaN
            raise ValueError(f"deadline seconds must be >= 0, got {seconds}")
        return cls(expires_at=clock() + seconds, clock=clock)

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires (the default everywhere)."""
        return cls()

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------
    @property
    def unbounded(self) -> bool:
        """Whether this deadline can never expire."""
        return math.isinf(self._expires_at)

    def remaining(self) -> float:
        """Seconds left (``inf`` when unbounded, clamped at 0.0)."""
        if self.unbounded:
            return math.inf
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        """Poll the clock: has the deadline passed?

        This is the call loops place at iteration boundaries; it is cheap
        (one clock read) and, for unbounded deadlines, does not read the
        clock at all.
        """
        self.polls += 1
        if self.unbounded:
            return False
        return self._clock() >= self._expires_at

    def poll_remaining(self) -> float:
        """Poll the clock and return the seconds left (clamped at 0.0).

        Equivalent to :meth:`expired` (it counts as one poll and one clock
        read) but also reports *how much* budget remains, which loops use
        to derive sub-deadlines for delegated work — e.g. the parallel
        engine hands each worker chunk the remaining budget measured at
        dispatch time.  ``inf`` when unbounded (no clock read).
        """
        self.polls += 1
        if self.unbounded:
            return math.inf
        return max(0.0, self._expires_at - self._clock())

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if expired.

        For call sites that *cannot* degrade gracefully (nothing sampled
        yet, no feasible incumbent) and must abort instead.
        """
        if self.expired():
            raise DeadlineExceeded(f"deadline expired before {what} completed")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.unbounded:
            return "Deadline(never)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


#: Loops accept any of these where a deadline is expected; see
#: :func:`as_deadline`.
DeadlineLike = Union[None, int, float, Deadline]

#: Alias used in experiment-facing signatures: a "run budget" is a deadline
#: for one end-to-end run.
RunBudget = Deadline


def as_deadline(value: DeadlineLike) -> Deadline:
    """Normalize the ``deadline=`` argument accepted across the library.

    ``None`` means "no deadline"; a number means "that many seconds from
    now"; an existing :class:`Deadline` passes through unchanged (so one
    object can be shared across phases).

    >>> as_deadline(None).unbounded
    True
    >>> isinstance(as_deadline(0.5), Deadline)
    True
    """
    if value is None:
        return Deadline.never()
    if isinstance(value, Deadline):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return Deadline.after(float(value))
    raise TypeError(
        f"deadline must be None, seconds, or a Deadline, got {type(value).__name__}"
    )


#: Ceiling for :func:`deadline_iter`'s adaptive stride: never let more than
#: this many iterations pass between clock reads, even when they are fast.
MAX_DEADLINE_STRIDE = 64

#: A stride (the work between two polls) slower than this is "slow": the
#: stride halves so expiry overshoot shrinks toward one iteration's work.
SLOW_STRIDE_SECONDS = 0.05


def deadline_iter(
    count: int,
    deadline: DeadlineLike = None,
    max_stride: int = MAX_DEADLINE_STRIDE,
    slow_stride_seconds: float = SLOW_STRIDE_SECONDS,
) -> Iterator[int]:
    """Yield ``0..count-1``, stopping early when ``deadline`` expires.

    The deadline is polled every *stride* iterations, and the stride adapts
    to the measured cost of the work in between: it starts at 1 (so a
    deadline that is already tight is honored within roughly one
    iteration's work), doubles while strides complete quickly (capping the
    polling overhead at ~1/``max_stride`` once iterations prove cheap), and
    halves whenever a stride takes longer than ``slow_stride_seconds``.  A
    fixed stride cannot do both: 64 iterations of dense-graph RR sampling
    can overshoot a budget by seconds, while polling every iteration taxes
    cheap loops.

    Stride timing reads the deadline's own (injectable) clock, so the
    adaptation itself is deterministic under a
    :class:`ManualClock`-driven test.  Unbounded deadlines skip all clock
    reads.  Early exhaustion is visible to the caller as fewer than
    ``count`` yielded indices.
    """
    budget = as_deadline(deadline)
    if budget.unbounded:
        yield from range(count)
        return
    last_remaining = budget.poll_remaining()
    if last_remaining <= 0.0:
        return
    stride = 1
    since_poll = 0
    for index in range(count):
        if since_poll >= stride:
            remaining = budget.poll_remaining()
            elapsed = last_remaining - remaining
            if elapsed > slow_stride_seconds:
                stride = max(1, stride // 2)
            elif elapsed < slow_stride_seconds / 4 and stride < max_stride:
                stride *= 2
            last_remaining = remaining
            since_poll = 0
            if remaining <= 0.0:
                return
        yield index
        since_poll += 1
