"""Bounded retries with deterministic seeded jitter.

Transient failures (a flaky filesystem, an injected fault, an estimator
fed a torn file) should not kill an hour-long experiment grid.  The
:func:`retry` helper re-runs a callable a *bounded* number of times with
exponential backoff.  Unlike typical retry utilities, the jitter is drawn
from a seeded generator, so a retried experiment remains exactly
reproducible: same seed, same sleep schedule, same outcome.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple, Type, TypeVar

from repro.exceptions import ConfigurationError
from repro.obs.context import get_metrics
from repro.utils.rng import SeedLike, as_generator

__all__ = ["retry", "backoff_schedule"]

T = TypeVar("T")


def backoff_schedule(
    attempts: int,
    backoff: float,
    multiplier: float = 2.0,
    jitter: float = 0.25,
    seed: SeedLike = 0,
) -> list[float]:
    """The deterministic sleep schedule :func:`retry` would use.

    ``attempts - 1`` entries (no sleep after the final attempt); entry
    ``k`` is ``backoff * multiplier**k`` scaled by a seeded jitter factor
    in ``[1 - jitter, 1 + jitter]``.  Exposed separately so tests can
    assert the exact schedule.

    >>> backoff_schedule(3, 0.1, jitter=0.0)
    [0.1, 0.2]
    >>> backoff_schedule(3, 0.1, seed=7) == backoff_schedule(3, 0.1, seed=7)
    True
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if backoff < 0.0:
        raise ValueError(f"backoff must be >= 0, got {backoff}")
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must lie in [0, 1), got {jitter}")
    rng = as_generator(seed)
    schedule = []
    for k in range(attempts - 1):
        factor = 1.0 if jitter == 0.0 else 1.0 + jitter * (2.0 * rng.random() - 1.0)
        schedule.append(backoff * multiplier**k * factor)
    return schedule


def retry(
    fn: Callable[[], T],
    attempts: int = 3,
    backoff: float = 0.05,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    give_up_on: Tuple[Type[BaseException], ...] = (ConfigurationError,),
    multiplier: float = 2.0,
    jitter: float = 0.25,
    seed: SeedLike = 0,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn()`` up to ``attempts`` times; re-raise the final failure.

    Parameters
    ----------
    fn:
        Zero-argument callable (wrap arguments in a lambda / partial).
    attempts:
        Hard bound on total calls — retries can never run away.
    backoff / multiplier / jitter / seed:
        Sleep ``backoff * multiplier**k``, jittered deterministically from
        ``seed`` (see :func:`backoff_schedule`), between attempts ``k`` and
        ``k + 1``.
    retry_on:
        Only these exception types are retried; anything else propagates
        immediately.
    give_up_on:
        Known-non-transient exception types that fail fast *even when*
        they match ``retry_on`` — by default ``ConfigurationError``: a
        malformed input will not become three identical failures and a
        wasted minute.  Pass ``()`` to disable the allowlist.
    sleep:
        Injectable for tests (pass ``lambda s: None`` to skip waiting).
    on_retry:
        Optional observer called with ``(attempt_index, exception)`` before
        each sleep.

    When every attempt fails, the final exception is re-raised carrying
    the whole story: ``retry_attempts`` (total calls made) and
    ``retry_history`` (one ``"attempt k/n: Type: message"`` summary per
    failure) are attached to it, and it is chained (``raise ... from``)
    to the previous attempt's exception so tracebacks show the pattern
    of failure, not just the last symptom.
    """
    schedule = backoff_schedule(
        attempts, backoff, multiplier=multiplier, jitter=jitter, seed=seed
    )
    metrics = get_metrics()
    metrics.inc("runtime.retry_calls_total")
    history: list[str] = []
    previous: BaseException | None = None
    for attempt in range(attempts):
        metrics.inc("runtime.retry_attempts_total")
        try:
            return fn()
        except give_up_on:
            metrics.inc("runtime.retry_fail_fast_total")
            raise
        except retry_on as exc:
            metrics.inc("runtime.retry_failures_total")
            history.append(
                f"attempt {attempt + 1}/{attempts}: {type(exc).__name__}: {exc}"
            )
            if attempt == attempts - 1:
                metrics.inc("runtime.retry_exhausted_total")
                _annotate(exc, attempts, history)
                raise exc from previous
            previous = exc
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = schedule[attempt]
            if delay > 0.0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


def _annotate(exc: BaseException, attempts: int, history: list[str]) -> None:
    """Attach the retry story to the exception that escapes.

    Best-effort: exceptions with ``__slots__`` (rare) simply go
    unannotated rather than masking the real failure.
    """
    try:
        exc.retry_attempts = attempts  # type: ignore[attr-defined]
        exc.retry_history = tuple(history)  # type: ignore[attr-defined]
    except (AttributeError, TypeError):  # pragma: no cover - exotic exceptions
        pass
