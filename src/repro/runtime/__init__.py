"""Fault-tolerant execution layer: deadlines, checkpoints, retries, faults.

The library's expensive pipelines — hyper-graph construction, coordinate
descent, Monte-Carlo scoring, the experiment grid — are made
interruptible, resumable and testable-under-failure by four small tools:

* :class:`Deadline` / :class:`RunBudget` — a cooperative wall-clock budget
  polled at iteration boundaries; expiry yields best-so-far *feasible*
  partial results instead of exceptions.
* :class:`CheckpointStore` — content-keyed, atomically-written snapshots
  so a killed experiment grid resumes from its last completed cell.
* :func:`retry` — bounded retries with deterministic seeded jitter.
* :class:`FaultInjector` — a seeded context manager that makes
  instrumented call sites raise or hang on schedule, so all of the above
  is provable in tests.

See ``docs/resilience.md`` for the end-to-end story.
"""

from repro.runtime.checkpoint import CheckpointStore, content_key
from repro.runtime.deadline import (
    Deadline,
    DeadlineLike,
    ManualClock,
    RunBudget,
    as_deadline,
    deadline_iter,
)
from repro.runtime.faults import (
    FaultInjector,
    InjectedFault,
    active_injector,
    maybe_inject,
    maybe_inject_process,
)
from repro.runtime.retry import backoff_schedule, retry

__all__ = [
    "Deadline",
    "DeadlineLike",
    "RunBudget",
    "ManualClock",
    "as_deadline",
    "deadline_iter",
    "CheckpointStore",
    "content_key",
    "retry",
    "backoff_schedule",
    "FaultInjector",
    "InjectedFault",
    "maybe_inject",
    "maybe_inject_process",
    "active_injector",
]
