"""Synthetic graph generators.

The paper evaluates on four SNAP networks (wiki-Vote, ca-AstroPh, com-DBLP,
com-LiveJournal) that are not redistributable here.  These generators provide
(1) standard random-graph families and deterministic toy topologies used by
tests and examples, and (2) *benchmark analogues* — reduced-scale graphs that
match the published shape (directedness, average degree, heavy-tailed degree
distribution) of each SNAP dataset, as documented in DESIGN.md.

All generators return :class:`repro.graphs.digraph.DiGraph` with unit edge
probabilities; apply a scheme from :mod:`repro.graphs.weights` afterwards.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.build import GraphBuilder
from repro.graphs.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "powerlaw_configuration",
    "forest_fire",
    "complete_graph",
    "path_graph",
    "star_graph",
    "cycle_graph",
    "isolated_nodes",
    "wiki_vote_like",
    "ca_astroph_like",
    "com_dblp_like",
    "com_lj_like",
]


# ----------------------------------------------------------------------
# deterministic toy topologies
# ----------------------------------------------------------------------

def isolated_nodes(n: int) -> DiGraph:
    """``n`` nodes, no edges — the paper's Example 1 topology."""
    return GraphBuilder(num_nodes=n).build()


def complete_graph(n: int, probability: float = 1.0) -> DiGraph:
    """Complete directed graph on ``n`` nodes (no self-loops)."""
    builder = GraphBuilder(num_nodes=n, default_probability=probability)
    for u in range(n):
        for v in range(n):
            if u != v:
                builder.add_edge(u, v)
    return builder.build()


def path_graph(n: int, probability: float = 1.0, bidirectional: bool = False) -> DiGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    builder = GraphBuilder(num_nodes=n, default_probability=probability)
    for u in range(n - 1):
        builder.add_edge(u, u + 1)
        if bidirectional:
            builder.add_edge(u + 1, u)
    return builder.build()


def cycle_graph(n: int, probability: float = 1.0) -> DiGraph:
    """Directed cycle on ``n`` nodes."""
    if n < 2:
        raise GraphError("cycle_graph requires n >= 2")
    builder = GraphBuilder(num_nodes=n, default_probability=probability)
    for u in range(n):
        builder.add_edge(u, (u + 1) % n)
    return builder.build()


def star_graph(n_leaves: int, probability: float = 1.0, center_out: bool = True) -> DiGraph:
    """Star with node 0 as hub and ``n_leaves`` leaves.

    With ``center_out=True`` edges point hub -> leaf (the Figure 1 toy
    example); otherwise leaf -> hub.
    """
    builder = GraphBuilder(num_nodes=n_leaves + 1, default_probability=probability)
    for leaf in range(1, n_leaves + 1):
        if center_out:
            builder.add_edge(0, leaf)
        else:
            builder.add_edge(leaf, 0)
    return builder.build()


# ----------------------------------------------------------------------
# random families
# ----------------------------------------------------------------------

def erdos_renyi(n: int, p: float, seed: SeedLike = None, directed: bool = True) -> DiGraph:
    """Erdős–Rényi ``G(n, p)`` using sparse edge-count sampling.

    For each ordered (or unordered when ``directed=False``) pair, the edge is
    present independently with probability ``p``; sampling draws the edge
    count from a binomial and then places edges uniformly, which is O(m)
    rather than O(n^2).
    """
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must lie in [0, 1], got {p}")
    rng = as_generator(seed)
    pairs = n * (n - 1) if directed else n * (n - 1) // 2
    m = int(rng.binomial(pairs, p)) if pairs else 0
    builder = GraphBuilder(num_nodes=n)
    seen: set[tuple[int, int]] = set()
    while len(seen) < m:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        if not directed and u > v:
            u, v = v, u
        seen.add((u, v))
    for u, v in seen:
        if directed:
            builder.add_edge(u, v)
        else:
            builder.add_undirected_edge(u, v)
    return builder.build()


def barabasi_albert(n: int, m: int, seed: SeedLike = None) -> DiGraph:
    """Barabási–Albert preferential attachment, doubled to a digraph.

    Each new node attaches to ``m`` existing nodes chosen proportionally to
    degree (via the standard repeated-nodes urn); each undirected edge
    becomes two directed edges.
    """
    if m < 1 or m >= n:
        raise GraphError(f"barabasi_albert requires 1 <= m < n, got m={m}, n={n}")
    rng = as_generator(seed)
    builder = GraphBuilder(num_nodes=n)
    # Urn of node ids, each repeated once per incident edge endpoint.
    urn: list[int] = []
    # Seed clique-free core: connect node m to each of 0..m-1.
    targets = list(range(m))
    for new_node in range(m, n):
        chosen: set[int] = set()
        for t in targets:
            builder.add_undirected_edge(new_node, t)
            urn.append(new_node)
            urn.append(t)
            chosen.add(t)
        # Pick next targets preferentially from the urn.
        targets = []
        picked: set[int] = set()
        while len(targets) < m and len(picked) < len(set(urn)):
            candidate = urn[int(rng.integers(0, len(urn)))]
            if candidate not in picked:
                picked.add(candidate)
                targets.append(candidate)
    return builder.build()


def watts_strogatz(n: int, k: int, beta: float, seed: SeedLike = None) -> DiGraph:
    """Watts–Strogatz small-world ring, doubled to a digraph.

    Each node connects to its ``k`` nearest ring neighbors (``k`` even);
    each edge rewires its far endpoint with probability ``beta``.
    """
    if k % 2 or k <= 0 or k >= n:
        raise GraphError(f"watts_strogatz requires even 0 < k < n, got k={k}, n={n}")
    if not 0.0 <= beta <= 1.0:
        raise GraphError(f"beta must lie in [0, 1], got {beta}")
    rng = as_generator(seed)
    edges: set[tuple[int, int]] = set()
    for u in range(n):
        for j in range(1, k // 2 + 1):
            v = (u + j) % n
            edges.add((min(u, v), max(u, v)))
    rewired: set[tuple[int, int]] = set()
    for u, v in sorted(edges):
        if rng.random() < beta:
            for _ in range(n):  # bounded retry
                w = int(rng.integers(0, n))
                a, b = min(u, w), max(u, w)
                if w != u and (a, b) not in rewired and (a, b) not in edges:
                    u, v = a, b
                    break
        rewired.add((min(u, v), max(u, v)))
    builder = GraphBuilder(num_nodes=n)
    for u, v in rewired:
        builder.add_undirected_edge(u, v)
    return builder.build()


def powerlaw_configuration(
    n: int,
    exponent: float = 2.5,
    average_degree: float = 10.0,
    seed: SeedLike = None,
    directed: bool = True,
    backing: Optional[str] = None,
    spill_dir=None,
) -> DiGraph:
    """Configuration-model graph with power-law degree distribution.

    ``average_degree`` is the target ``m / n`` of the *resulting digraph*.
    Degrees are drawn from a discrete power law ``P(d) ∝ d^(-exponent)``
    rescaled accordingly, then stubs are matched uniformly at random
    (multi-edges and self-loops dropped, which slightly lowers the realized
    degree — acceptable for benchmark analogues).

    ``backing="mmap"`` routes the stub/key stream and the resulting CSR
    through spill files under ``spill_dir``
    (:mod:`repro.graphs.streaming`), capping heap usage at O(n) while
    producing the bit-identical graph; the default keeps everything on
    the heap.
    """
    if n <= 1:
        raise GraphError("powerlaw_configuration requires n > 1")
    if exponent <= 1.0:
        raise GraphError(f"exponent must exceed 1, got {exponent}")
    from repro.utils.spill import resolve_backing

    backing_mode = resolve_backing(backing)
    rng = as_generator(seed)
    max_degree = max(2, int(math.sqrt(n) * 2))
    support = np.arange(1, max_degree + 1, dtype=np.float64)
    weights = support ** (-exponent)
    weights /= weights.sum()
    raw_mean = float((support * weights).sum())
    # Stub matching yields sum(deg)/2 pairs; each pair becomes one directed
    # edge (directed=True) or two (undirected doubling), so the stub mean
    # must be twice the target m/n in the directed case.
    target_stub_mean = 2.0 * average_degree if directed else average_degree
    scale = target_stub_mean / raw_mean
    degrees = np.maximum(
        1, np.round(rng.choice(support, size=n, p=weights) * scale).astype(np.int64)
    )
    if degrees.sum() % 2:
        degrees[int(rng.integers(0, n))] += 1

    if backing_mode == "mmap":
        # The out-of-core tail consumes the identical RNG stream (its
        # only remaining draw is the stub shuffle, whose consumption
        # depends solely on length), so both paths emit the same graph.
        from repro.graphs.streaming import streaming_configuration_csr

        return streaming_configuration_csr(
            n, degrees, rng, directed=directed, spill_dir=spill_dir
        )

    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    half = stubs.size // 2
    left, right = stubs[:half], stubs[half : 2 * half]

    # Assemble the CSR directly instead of feeding a GraphBuilder one edge
    # at a time: at com-LiveJournal scale the stub list is ~70M entries and
    # Python-level appends dominate both time and memory.  Encoding each
    # pair as ``u * n + v`` makes np.unique's ascending sort equal to the
    # builder's stable (source, target) lexsort, and all probabilities are
    # 1.0, so last-duplicate-wins is moot — the result is bit-identical to
    # the builder path (self-loops dropped, duplicates collapsed).
    keep = left != right
    left, right = left[keep], right[keep]
    if directed:
        keys = left * n + right
    else:
        keys = np.concatenate([left * n + right, right * n + left])
    del left, right, stubs
    keys = np.unique(keys)
    sources = keys // n
    targets = (keys % n).astype(np.int32)
    out_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(sources, minlength=n), out=out_offsets[1:])
    return DiGraph(n, out_offsets, targets, np.ones(keys.size, dtype=np.float64))


def forest_fire(
    n: int,
    forward_prob: float = 0.35,
    backward_prob: float = 0.30,
    seed: SeedLike = None,
) -> DiGraph:
    """Leskovec et al. forest-fire model (densifying, heavy-tailed).

    Each arriving node picks an ambassador, links to it, then recursively
    "burns" through the ambassador's out- and in-neighbors with geometric
    fan-outs governed by ``forward_prob`` / ``backward_prob``.
    """
    if not 0.0 <= forward_prob < 1.0 or not 0.0 <= backward_prob < 1.0:
        raise GraphError("forest_fire probabilities must lie in [0, 1)")
    rng = as_generator(seed)
    out_adj: list[list[int]] = [[] for _ in range(n)]
    in_adj: list[list[int]] = [[] for _ in range(n)]

    def geometric_count(p: float) -> int:
        if p <= 0.0:
            return 0
        # Number of successes before first failure: mean p / (1 - p).
        return int(rng.geometric(1.0 - p)) - 1

    for new_node in range(1, n):
        ambassador = int(rng.integers(0, new_node))
        visited = {ambassador}
        frontier = [ambassador]
        while frontier:
            current = frontier.pop()
            out_adj[new_node].append(current)
            in_adj[current].append(new_node)
            candidates = [w for w in out_adj[current] if w not in visited and w != new_node]
            burn_fwd = min(geometric_count(forward_prob), len(candidates))
            picked = (
                rng.choice(len(candidates), size=burn_fwd, replace=False) if burn_fwd else []
            )
            next_nodes = [candidates[i] for i in picked]
            back_candidates = [w for w in in_adj[current] if w not in visited and w != new_node]
            burn_bwd = min(geometric_count(backward_prob), len(back_candidates))
            picked_b = (
                rng.choice(len(back_candidates), size=burn_bwd, replace=False)
                if burn_bwd
                else []
            )
            next_nodes += [back_candidates[i] for i in picked_b]
            for w in next_nodes:
                visited.add(w)
                frontier.append(w)
    builder = GraphBuilder(num_nodes=n)
    for u, neighbors in enumerate(out_adj):
        for v in neighbors:
            builder.add_edge(u, v)
    return builder.build()


# ----------------------------------------------------------------------
# benchmark analogues (Table 2 shapes at reduced scale)
# ----------------------------------------------------------------------

def _analogue(
    n: int,
    average_degree: float,
    exponent: float,
    seed: SeedLike,
    directed: bool,
    backing: Optional[str] = None,
    spill_dir=None,
) -> DiGraph:
    return powerlaw_configuration(
        n=n,
        exponent=exponent,
        average_degree=average_degree,
        seed=seed,
        directed=directed,
        backing=backing,
        spill_dir=spill_dir,
    )


def wiki_vote_like(
    scale: float = 1.0,
    seed: SeedLike = 2016,
    backing: Optional[str] = None,
    spill_dir=None,
) -> DiGraph:
    """Analogue of SNAP wiki-Vote (n=7115, m=103689, avg deg 14.6, directed).

    ``scale`` multiplies the node count; degree shape is preserved.
    """
    n = max(50, int(7115 * scale))
    return _analogue(
        n, average_degree=14.6, exponent=2.1, seed=seed, directed=True,
        backing=backing, spill_dir=spill_dir,
    )


def ca_astroph_like(
    scale: float = 1.0,
    seed: SeedLike = 2016,
    backing: Optional[str] = None,
    spill_dir=None,
) -> DiGraph:
    """Analogue of SNAP ca-AstroPh (n=18772, m=396160 directed, avg 21.1).

    The original is an undirected co-authorship network doubled to directed
    edges; the analogue doubles each sampled edge the same way.
    """
    n = max(50, int(18772 * scale))
    return _analogue(
        n, average_degree=21.1, exponent=2.3, seed=seed, directed=False,
        backing=backing, spill_dir=spill_dir,
    )


def com_dblp_like(
    scale: float = 1.0,
    seed: SeedLike = 2016,
    backing: Optional[str] = None,
    spill_dir=None,
) -> DiGraph:
    """Analogue of SNAP com-DBLP (n=317080, m~2.1M directed, avg 6.6)."""
    n = max(50, int(317080 * scale))
    return _analogue(
        n, average_degree=6.6, exponent=2.6, seed=seed, directed=False,
        backing=backing, spill_dir=spill_dir,
    )


def com_lj_like(
    scale: float = 1.0,
    seed: SeedLike = 2016,
    backing: Optional[str] = None,
    spill_dir=None,
) -> DiGraph:
    """Analogue of SNAP com-LiveJournal (n~3.99M, m~69M directed, avg 17.4).

    At ``scale=1.0`` prefer ``backing="mmap"``: the heap path's transient
    stub/key stream costs several GB where the streaming path stays O(n).
    """
    n = max(50, int(3997962 * scale))
    return _analogue(
        n, average_degree=17.4, exponent=2.4, seed=seed, directed=False,
        backing=backing, spill_dir=spill_dir,
    )
