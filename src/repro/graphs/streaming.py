"""Bounded-memory configuration-model assembly on spill files.

The in-heap `powerlaw_configuration` path materializes the whole stub
list (~70M ``int64`` at com-LiveJournal scale), the doubled ``u*n+v``
key stream (~140M entries) and ``np.unique``'s sort copy — several GB of
transient heap for a graph whose final CSR is a fraction of that.  This
module rebuilds the same pipeline out of *passes over spill files*
(:mod:`repro.utils.spill`), keeping the coordinator's anonymous heap at
O(n) (degree/offset vectors) plus one O(chunk) transient, regardless of
edge count:

1. **Stub spill.**  ``np.repeat(arange(n), degrees)`` is written chunk
   by chunk into a file-backed array, then shuffled in place.
   ``Generator.shuffle`` consumes the identical random stream for a
   memmap as for a heap array (it depends only on the length), so the
   shuffled content is bit-identical to the heap path's.
2. **Key spill.**  Pair the two stub halves chunkwise, drop self-loops,
   encode ``u*n+v`` (plus the reversed key when undirected) into a
   second spill file.  The heap path emits forward keys then reversed
   keys while this pass interleaves them per chunk — irrelevant, because
   the next step's output is order-independent.
3. **External sort + dedup.**  A two-pass bucket sort: a histogram pass
   over ``key // fine_width`` sizes ~64K fine ranges, greedily grouped
   into coarse buckets of bounded entry count; a scatter pass copies
   each chunk's keys into their bucket extents (stable within a chunk);
   then each bucket — a disjoint, ascending key range — is
   ``np.unique``'d *in core* and compacted forward.  Concatenating
   per-range ``np.unique`` results over ascending disjoint ranges is
   exactly ``np.unique`` of the whole stream, so the deduped key spill
   is bit-identical to the heap path's ``np.unique(keys)``.
4. **CSR extraction.**  Decode sources/targets chunkwise into
   spill-backed CSR arrays (all probabilities 1.0).  For undirected
   graphs the key set is symmetric, so the in-adjacency *is* the
   out-adjacency and the arrays are shared; for directed graphs the
   reversed keys ``v*n+u`` run through the same external sort to build
   the transpose — both reproduce ``DiGraph._build_in_adjacency``'s
   stable-argsort result exactly (within a target, sources ascend).

Every pass calls :func:`repro.utils.spill.release_pages` after its
sequential sweep so dirty file-backed pages move to the page cache
instead of accumulating in the process's resident set.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.utils.spill import release_pages, spill_array

__all__ = ["streaming_configuration_csr"]

#: Entries (not bytes) per streaming pass chunk: 8M int64 = 64 MB.
STREAM_CHUNK = 1 << 23

#: Target entries per external-sort bucket; each bucket is sorted in core
#: (two transient copies of this many int64 = ~128 MB at the default).
BUCKET_ENTRIES = 1 << 23

#: Fine histogram resolution for the bucket planner.
_FINE_BUCKETS = 1 << 16


def _write_stub_spill(
    n: int,
    degrees: np.ndarray,
    spill_dir: Union[str, Path, None],
    chunk: int,
) -> np.ndarray:
    """Spill-backed equivalent of ``np.repeat(arange(n), degrees)``."""
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    stubs = spill_array(int(offsets[-1]), np.int64, spill_dir, "stubs")
    node = 0
    while node < n:
        # Advance to the node whose slice ends this chunk (always at
        # least one node, so a single degree larger than the chunk still
        # makes progress with a transient of that one slice).
        end = int(np.searchsorted(offsets, offsets[node] + chunk, side="right")) - 1
        end = min(max(end, node + 1), n)
        segment = np.repeat(np.arange(node, end, dtype=np.int64), degrees[node:end])
        stubs[offsets[node] : offsets[node] + segment.size] = segment
        node = end
    release_pages(stubs)
    return stubs


def _write_key_spill(
    stubs: np.ndarray,
    n: int,
    directed: bool,
    spill_dir: Union[str, Path, None],
    chunk: int,
) -> Tuple[np.ndarray, int]:
    """Pair stub halves into ``u*n+v`` keys (self-loops dropped).

    Returns the key spill and the number of valid leading entries (the
    capacity assumes no self-loops; drops leave a slack tail unused).
    """
    half = stubs.size // 2
    capacity = half if directed else 2 * half
    keys = spill_array(capacity, np.int64, spill_dir, "keys")
    cursor = 0
    for start in range(0, half, chunk):
        stop = min(start + chunk, half)
        left = np.asarray(stubs[start:stop])
        right = np.asarray(stubs[half + start : half + stop])
        keep = left != right
        left, right = left[keep], right[keep]
        forward = left * n + right
        keys[cursor : cursor + forward.size] = forward
        cursor += forward.size
        if not directed:
            keys[cursor : cursor + forward.size] = right * n + left
            cursor += forward.size
    release_pages(stubs)
    release_pages(keys)
    return keys, cursor


def _sort_unique_spill(
    keys: np.ndarray,
    count: int,
    n: int,
    spill_dir: Union[str, Path, None],
    chunk: int,
    bucket_entries: int,
) -> Tuple[np.ndarray, int]:
    """External sort + dedup of ``keys[:count]``; equals ``np.unique``.

    Two passes plus an in-core sweep: histogram ``key // fine_width``
    into ~64K fine ranges, group them into coarse buckets of at most
    ``bucket_entries`` (+ one fine range) entries, scatter every key
    into its bucket's extent of a scratch spill, then ``np.unique`` each
    bucket in core and compact the results forward.  Buckets partition
    the key space into ascending disjoint ranges, so the concatenation
    of their sorted deduped contents is the sorted deduped whole.
    """
    scratch = spill_array(count, np.int64, spill_dir, "sorted-keys")
    if count == 0:
        return scratch, 0
    fine_width = max(1, -(-(n * n) // _FINE_BUCKETS))
    fine_counts = np.zeros(_FINE_BUCKETS, dtype=np.int64)
    for start in range(0, count, chunk):
        block = np.asarray(keys[start : start + chunk][: count - start])
        fine_counts += np.bincount(block // fine_width, minlength=_FINE_BUCKETS)
    coarse_of_fine = (np.cumsum(fine_counts) - fine_counts) // bucket_entries
    num_coarse = int(coarse_of_fine[-1]) + 1
    coarse_counts = np.zeros(num_coarse, dtype=np.int64)
    np.add.at(coarse_counts, coarse_of_fine, fine_counts)
    bucket_starts = np.zeros(num_coarse + 1, dtype=np.int64)
    np.cumsum(coarse_counts, out=bucket_starts[1:])
    cursors = bucket_starts[:-1].copy()

    for index, start in enumerate(range(0, count, chunk)):
        block = np.asarray(keys[start : start + chunk][: count - start])
        bucket_ids = coarse_of_fine[block // fine_width]
        order = np.argsort(bucket_ids, kind="stable")
        sorted_keys = block[order]
        sorted_ids = bucket_ids[order]
        present, segment_starts = np.unique(sorted_ids, return_index=True)
        segment_ends = np.append(segment_starts[1:], sorted_ids.size)
        for bucket, seg_lo, seg_hi in zip(present, segment_starts, segment_ends):
            at = cursors[bucket]
            scratch[at : at + (seg_hi - seg_lo)] = sorted_keys[seg_lo:seg_hi]
            cursors[bucket] = at + (seg_hi - seg_lo)
        if index % 8 == 7:
            release_pages(scratch)
    release_pages(keys)

    write_at = 0
    for bucket in range(num_coarse):
        lo, hi = int(bucket_starts[bucket]), int(bucket_starts[bucket + 1])
        if hi == lo:
            continue
        unique = np.unique(np.asarray(scratch[lo:hi]))
        scratch[write_at : write_at + unique.size] = unique
        write_at += unique.size
        release_pages(scratch)
    return scratch, write_at


def _csr_from_sorted_keys(
    sorted_keys: np.ndarray,
    num_edges: int,
    n: int,
    spill_dir: Union[str, Path, None],
    chunk: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode ascending unique keys into spill-backed CSR arrays."""
    out_degree = np.zeros(n, dtype=np.int64)
    targets = spill_array(num_edges, np.int32, spill_dir, "targets")
    probs = spill_array(num_edges, np.float64, spill_dir, "probs")
    for start in range(0, num_edges, chunk):
        block = np.asarray(sorted_keys[start : start + chunk][: num_edges - start])
        out_degree += np.bincount(block // n, minlength=n)
        targets[start : start + block.size] = block % n
        probs[start : start + block.size] = 1.0
    # Offsets spill too: they are only O(n), but a heap offsets array
    # would pickle by value into every pool worker (~32 MB per direction
    # at com-LiveJournal scale) where a spill receipt costs ~100 bytes.
    offsets = spill_array(n + 1, np.int64, spill_dir, "offsets")
    np.cumsum(out_degree, out=offsets[1:])
    release_pages(targets)
    release_pages(probs)
    return offsets, targets, probs


def streaming_configuration_csr(
    n: int,
    degrees: np.ndarray,
    rng: np.random.Generator,
    directed: bool,
    spill_dir: Union[str, Path, None] = None,
    chunk: int = STREAM_CHUNK,
    bucket_entries: Optional[int] = None,
) -> DiGraph:
    """Out-of-core tail of the configuration model; bit-identical output.

    Takes over `powerlaw_configuration` *after* the degree sequence is
    drawn (and parity-fixed): stub matching, self-loop/duplicate
    removal and CSR assembly all run as chunked passes over spill
    files, and the returned :class:`DiGraph` owns memmap-backed edge
    arrays.  ``rng`` must be positioned exactly where the heap path
    would call ``rng.shuffle`` — the single remaining draw — so the
    edge set matches the in-heap result bit for bit (pinned by
    ``tests/graphs/test_streaming.py``).
    """
    bucket_entries = BUCKET_ENTRIES if bucket_entries is None else int(bucket_entries)
    stubs = _write_stub_spill(n, degrees, spill_dir, chunk)
    rng.shuffle(stubs)
    keys, key_count = _write_key_spill(stubs, n, directed, spill_dir, chunk)
    del stubs
    sorted_keys, num_edges = _sort_unique_spill(
        keys, key_count, n, spill_dir, chunk, bucket_entries
    )
    del keys
    out_offsets, out_targets, out_probs = _csr_from_sorted_keys(
        sorted_keys, num_edges, n, spill_dir, chunk
    )
    if directed:
        # The transpose comes from the reversed keys v*n+u, run through
        # the same external sort.  Within one target the sources ascend,
        # matching _build_in_adjacency's stable argsort exactly.
        reversed_keys = spill_array(num_edges, np.int64, spill_dir, "rkeys")
        for start in range(0, num_edges, chunk):
            block = np.asarray(
                sorted_keys[start : start + chunk][: num_edges - start]
            )
            reversed_keys[start : start + block.size] = (
                (block % n) * n + block // n
            )
        release_pages(reversed_keys)
        del sorted_keys
        sorted_reversed, reversed_count = _sort_unique_spill(
            reversed_keys, num_edges, n, spill_dir, chunk, bucket_entries
        )
        del reversed_keys
        in_offsets, in_sources, in_probs = _csr_from_sorted_keys(
            sorted_reversed, reversed_count, n, spill_dir, chunk
        )
        del sorted_reversed
    else:
        # Undirected doubling makes the key set symmetric: the transpose
        # equals the out-adjacency, so the arrays are shared outright.
        del sorted_keys
        in_offsets, in_sources, in_probs = out_offsets, out_targets, out_probs
    return DiGraph.from_csr_pair(
        n, out_offsets, out_targets, out_probs, in_offsets, in_sources, in_probs
    )
