"""Community detection: asynchronous label propagation.

Raghavan, Albert & Kumara (2007).  Near-linear-time community detection
used here to produce realistic *target groups* for the group-persuasion
baseline (:mod:`repro.discrete.group_persuasion`) — marketers target
communities, not arbitrary node ranges.

Edges are treated as undirected for propagation (communities are a
structural, not directional, notion).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator

__all__ = ["label_propagation_communities"]


def label_propagation_communities(
    graph: DiGraph,
    max_iterations: int = 50,
    seed: SeedLike = None,
    min_size: int = 1,
) -> List[np.ndarray]:
    """Partition nodes into communities by label propagation.

    Each node starts in its own community; nodes (visited in random order)
    repeatedly adopt the most frequent label among their neighbors (ties
    broken uniformly at random) until no label changes or
    ``max_iterations`` passes.  Isolated nodes stay singletons.

    Parameters
    ----------
    min_size:
        Communities smaller than this are merged into one "remainder"
        group (handy when downstream code wants non-trivial groups).

    Returns a list of disjoint node-id arrays covering all of ``V``.
    """
    if max_iterations < 1:
        raise GraphError(f"max_iterations must be >= 1, got {max_iterations}")
    rng = as_generator(seed)
    n = graph.num_nodes
    labels = np.arange(n, dtype=np.int64)

    # Undirected neighborhood view.
    def neighbors_of(node: int) -> np.ndarray:
        return np.concatenate((graph.out_neighbors(node), graph.in_neighbors(node)))

    order = np.arange(n)
    for _ in range(max_iterations):
        rng.shuffle(order)
        changed = 0
        for node in order:
            neighborhood = neighbors_of(int(node))
            if neighborhood.size == 0:
                continue
            neighbor_labels = labels[neighborhood]
            values, counts = np.unique(neighbor_labels, return_counts=True)
            best = values[counts == counts.max()]
            new_label = int(best[rng.integers(0, best.size)]) if best.size > 1 else int(best[0])
            if new_label != labels[node]:
                labels[node] = new_label
                changed += 1
        if changed == 0:
            break

    groups: dict[int, list[int]] = {}
    for node in range(n):
        groups.setdefault(int(labels[node]), []).append(node)
    communities = [np.asarray(members, dtype=np.int64) for members in groups.values()]

    if min_size > 1:
        kept = [c for c in communities if c.size >= min_size]
        leftovers = [c for c in communities if c.size < min_size]
        if leftovers:
            kept.append(np.concatenate(leftovers))
        communities = kept
    return sorted(communities, key=lambda c: (-c.size, int(c[0])))
