"""Edge-probability assignment schemes.

The paper (Section 9.1) uses the *weighted cascade* convention: the
propagation probability of a directed edge ``(u, v)`` is
``alpha / in_degree(v)`` with ``alpha`` in ``{0.7, 0.85, 1.0}``.  Two other
standard schemes from the IM literature (constant and trivalency) are also
provided for completeness.

All functions return a *new* :class:`DiGraph`; the input is never mutated.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator
from repro.utils.spill import is_spill_backed, release_pages, spill_array

__all__ = [
    "assign_weighted_cascade",
    "assign_constant_probabilities",
    "assign_trivalency_probabilities",
]


def assign_weighted_cascade(graph: DiGraph, alpha: float = 1.0) -> DiGraph:
    """Weighted-cascade probabilities: ``p(u, v) = alpha / in_degree(v)``.

    ``alpha`` must satisfy ``0 < alpha <= 1`` (the paper uses 0.7/0.85/1.0).
    Every edge target has in-degree >= 1 by construction, so the formula is
    always well defined.
    """
    if not 0.0 < alpha <= 1.0:
        raise GraphError(f"alpha must lie in (0, 1], got {alpha}")
    if is_spill_backed(graph.out_targets):
        return _weighted_cascade_spill(graph, alpha)
    in_degrees = graph.in_degrees().astype(np.float64)
    probs = alpha / in_degrees[graph.out_targets]
    # in_degree(v) >= 1 whenever v appears as a target, and alpha <= 1,
    # so probabilities are automatically in (0, 1].
    return graph.with_probabilities(probs)


def _weighted_cascade_spill(graph: DiGraph, alpha: float, chunk: int = 1 << 23) -> DiGraph:
    """Weighted cascade for spill-backed graphs, without a transpose rebuild.

    ``with_probabilities`` re-derives the in-adjacency from scratch — an
    O(m log m) argsort with m-sized heap scratch, pointless here because
    the probability of every edge *into* ``v`` is the same
    ``alpha / in_degree(v)``.  Instead: compute the n-sized per-target
    value once, gather it chunkwise into a spill-backed ``out_probs``,
    expand it chunkwise (``repeat``) into ``in_probs``, and adopt the
    existing adjacency arrays unchanged.  Each probability is produced
    by the identical IEEE division ``alpha / in_degree_f64[v]``, so the
    result is bit-identical to the heap path's.
    """
    n = graph.num_nodes
    in_offsets = graph.in_offsets
    with np.errstate(divide="ignore"):
        # Isolated targets (in-degree 0) produce inf here but are never
        # gathered (they appear in no edge) nor repeated (count 0).
        per_target = alpha / np.diff(in_offsets).astype(np.float64)
    out_probs = spill_array(graph.num_edges, np.float64, name_hint="wc-out-probs")
    for start in range(0, graph.num_edges, chunk):
        block = np.asarray(graph.out_targets[start : start + chunk])
        out_probs[start : start + block.size] = per_target[block]
    release_pages(out_probs)
    in_probs = spill_array(graph.num_edges, np.float64, name_hint="wc-in-probs")
    node = 0
    while node < n:
        end = int(np.searchsorted(in_offsets, in_offsets[node] + chunk, side="right")) - 1
        end = min(max(end, node + 1), n)
        lo, hi = int(in_offsets[node]), int(in_offsets[end])
        in_probs[lo:hi] = np.repeat(
            per_target[node:end], np.diff(in_offsets[node : end + 1])
        )
        node = end
    release_pages(in_probs)
    return DiGraph.from_csr_pair(
        n,
        graph.out_offsets,
        graph.out_targets,
        out_probs,
        in_offsets,
        graph.in_sources,
        in_probs,
    )


def assign_constant_probabilities(graph: DiGraph, probability: float) -> DiGraph:
    """Uniform probability on every edge (e.g. 0.01 or 0.1 in IC literature)."""
    if not 0.0 <= probability <= 1.0:
        raise GraphError(f"probability must lie in [0, 1], got {probability}")
    return graph.with_probabilities(np.full(graph.num_edges, probability))


def assign_trivalency_probabilities(
    graph: DiGraph,
    values: Sequence[float] = (0.1, 0.01, 0.001),
    seed: SeedLike = None,
) -> DiGraph:
    """Trivalency scheme: each edge draws uniformly from ``values``.

    The classic setting (Chen et al.) uses ``{0.1, 0.01, 0.001}``.
    """
    values_arr = np.asarray(values, dtype=np.float64)
    if values_arr.size == 0:
        raise GraphError("values must be non-empty")
    if np.any(values_arr < 0.0) or np.any(values_arr > 1.0):
        raise GraphError("all values must lie in [0, 1]")
    rng = as_generator(seed)
    probs = rng.choice(values_arr, size=graph.num_edges)
    return graph.with_probabilities(probs)
