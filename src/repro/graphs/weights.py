"""Edge-probability assignment schemes.

The paper (Section 9.1) uses the *weighted cascade* convention: the
propagation probability of a directed edge ``(u, v)`` is
``alpha / in_degree(v)`` with ``alpha`` in ``{0.7, 0.85, 1.0}``.  Two other
standard schemes from the IM literature (constant and trivalency) are also
provided for completeness.

All functions return a *new* :class:`DiGraph`; the input is never mutated.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.digraph import DiGraph
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "assign_weighted_cascade",
    "assign_constant_probabilities",
    "assign_trivalency_probabilities",
]


def assign_weighted_cascade(graph: DiGraph, alpha: float = 1.0) -> DiGraph:
    """Weighted-cascade probabilities: ``p(u, v) = alpha / in_degree(v)``.

    ``alpha`` must satisfy ``0 < alpha <= 1`` (the paper uses 0.7/0.85/1.0).
    Every edge target has in-degree >= 1 by construction, so the formula is
    always well defined.
    """
    if not 0.0 < alpha <= 1.0:
        raise GraphError(f"alpha must lie in (0, 1], got {alpha}")
    in_degrees = graph.in_degrees().astype(np.float64)
    probs = alpha / in_degrees[graph.out_targets]
    # in_degree(v) >= 1 whenever v appears as a target, and alpha <= 1,
    # so probabilities are automatically in (0, 1].
    return graph.with_probabilities(probs)


def assign_constant_probabilities(graph: DiGraph, probability: float) -> DiGraph:
    """Uniform probability on every edge (e.g. 0.01 or 0.1 in IC literature)."""
    if not 0.0 <= probability <= 1.0:
        raise GraphError(f"probability must lie in [0, 1], got {probability}")
    return graph.with_probabilities(np.full(graph.num_edges, probability))


def assign_trivalency_probabilities(
    graph: DiGraph,
    values: Sequence[float] = (0.1, 0.01, 0.001),
    seed: SeedLike = None,
) -> DiGraph:
    """Trivalency scheme: each edge draws uniformly from ``values``.

    The classic setting (Chen et al.) uses ``{0.1, 0.01, 0.001}``.
    """
    values_arr = np.asarray(values, dtype=np.float64)
    if values_arr.size == 0:
        raise GraphError("values must be non-empty")
    if np.any(values_arr < 0.0) or np.any(values_arr > 1.0):
        raise GraphError("all values must lie in [0, 1]")
    rng = as_generator(seed)
    probs = rng.choice(values_arr, size=graph.num_edges)
    return graph.with_probabilities(probs)
