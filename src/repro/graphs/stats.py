"""Descriptive statistics over :class:`DiGraph` instances.

Used to verify that benchmark-analogue graphs match the published shapes
(Table 2 of the paper) and by the experiment harness's dataset reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graphs.digraph import DiGraph

__all__ = ["GraphStats", "describe", "weakly_connected_components", "largest_wcc_size"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a directed graph."""

    num_nodes: int
    num_edges: int
    average_degree: float
    max_out_degree: int
    max_in_degree: int
    num_isolated: int
    largest_wcc: int

    def as_row(self) -> str:
        """A one-line report in the style of the paper's Table 2."""
        return (
            f"n={self.num_nodes:>9,d}  m={self.num_edges:>11,d}  "
            f"avg_deg={self.average_degree:6.2f}  wcc={self.largest_wcc:,d}"
        )


def weakly_connected_components(graph: DiGraph) -> List[np.ndarray]:
    """Weakly connected components via iterative union over both directions."""
    n = graph.num_nodes
    component = np.full(n, -1, dtype=np.int64)
    components: List[np.ndarray] = []
    for start in range(n):
        if component[start] >= 0:
            continue
        label = len(components)
        stack = [start]
        component[start] = label
        members = [start]
        while stack:
            node = stack.pop()
            for neighbor in np.concatenate(
                (graph.out_neighbors(node), graph.in_neighbors(node))
            ):
                neighbor = int(neighbor)
                if component[neighbor] < 0:
                    component[neighbor] = label
                    stack.append(neighbor)
                    members.append(neighbor)
        components.append(np.asarray(members, dtype=np.int64))
    return components


def largest_wcc_size(graph: DiGraph) -> int:
    """Size of the largest weakly connected component (0 for empty graphs)."""
    components = weakly_connected_components(graph)
    if not components:
        return 0
    return max(len(c) for c in components)


def describe(graph: DiGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    isolated = int(np.count_nonzero((out_deg == 0) & (in_deg == 0)))
    average = graph.num_edges / graph.num_nodes if graph.num_nodes else 0.0
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        average_degree=average,
        max_out_degree=int(out_deg.max()) if graph.num_nodes else 0,
        max_in_degree=int(in_deg.max()) if graph.num_nodes else 0,
        num_isolated=isolated,
        largest_wcc=largest_wcc_size(graph),
    )
