"""Immutable CSR (compressed sparse row) directed graph.

The whole library operates on this one graph type.  Nodes are dense integer
ids ``0 .. n-1``.  Edges are stored twice — once in out-adjacency (CSR) and
once in in-adjacency (CSC-like) — because forward diffusion walks
out-neighbors while reverse-reachable (RR) sampling walks in-neighbors.

Each directed edge carries a propagation probability in ``[0, 1]``; the
probability arrays are aligned with the adjacency arrays, so the probability
of edge ``(u, v)`` is found at the same index as ``v`` in ``u``'s
out-neighbor slice.

Construction goes through :class:`repro.graphs.build.GraphBuilder`; this
class only validates and indexes already-sorted arrays.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.exceptions import GraphError, NodeNotFoundError

__all__ = ["DiGraph"]


class DiGraph:
    """A fixed directed graph with per-edge propagation probabilities.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``; node ids are ``0 .. n-1``.
    out_offsets, out_targets:
        CSR arrays: out-neighbors of ``u`` are
        ``out_targets[out_offsets[u]:out_offsets[u + 1]]``.
    out_probs:
        Propagation probability of each out-edge, aligned with
        ``out_targets``.

    Notes
    -----
    The in-adjacency (transpose) arrays are derived in the constructor.  The
    transpose preserves edge probabilities: the probability attached to the
    reverse edge ``(v, u)`` equals the probability of the original edge
    ``(u, v)``, exactly as required by the polling method of Section 8
    ("the propagation probability of an edge (v, u) in G^T is pp_uv").
    """

    __slots__ = (
        "num_nodes",
        "num_edges",
        "out_offsets",
        "out_targets",
        "out_probs",
        "in_offsets",
        "in_sources",
        "in_probs",
    )

    def __init__(
        self,
        num_nodes: int,
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        out_probs: np.ndarray,
    ) -> None:
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        out_offsets = np.ascontiguousarray(out_offsets, dtype=np.int64)
        out_targets = np.ascontiguousarray(out_targets, dtype=np.int32)
        out_probs = np.ascontiguousarray(out_probs, dtype=np.float64)
        if out_offsets.shape != (num_nodes + 1,):
            raise GraphError(
                f"out_offsets must have length n+1={num_nodes + 1}, got {out_offsets.shape}"
            )
        if out_offsets[0] != 0 or np.any(np.diff(out_offsets) < 0):
            raise GraphError("out_offsets must start at 0 and be non-decreasing")
        num_edges = int(out_offsets[-1])
        if out_targets.shape != (num_edges,) or out_probs.shape != (num_edges,):
            raise GraphError("out_targets/out_probs length must equal out_offsets[-1]")
        if num_edges and (out_targets.min() < 0 or out_targets.max() >= num_nodes):
            raise GraphError("edge target out of range")
        if num_edges > 1:
            # Every out-neighbor slice must be strictly increasing: sorted
            # order backs has_edge's binary search, and uniqueness backs the
            # vectorized cascade frontier (which stamps a whole neighbor
            # batch at once and does no in-batch dedup).
            slice_start = np.zeros(num_edges, dtype=bool)
            slice_start[out_offsets[:-1][np.diff(out_offsets) > 0]] = True
            if np.any((np.diff(out_targets) <= 0) & ~slice_start[1:]):
                raise GraphError(
                    "out-neighbor slices must be sorted with no duplicate targets"
                )
        if num_edges and (np.any(out_probs < 0.0) or np.any(out_probs > 1.0) or np.any(np.isnan(out_probs))):
            raise GraphError("edge probabilities must lie in [0, 1]")

        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.out_offsets = out_offsets
        self.out_targets = out_targets
        self.out_probs = out_probs
        self.in_offsets, self.in_sources, self.in_probs = self._build_in_adjacency()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_in_adjacency(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Derive the transpose adjacency from the out-CSR arrays."""
        n = self.num_nodes
        in_degree = np.bincount(self.out_targets, minlength=n).astype(np.int64)
        in_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_degree, out=in_offsets[1:])
        sources = np.repeat(
            np.arange(n, dtype=np.int32), np.diff(self.out_offsets).astype(np.int64)
        )
        # Stable sort groups edges by target while keeping sources ordered,
        # so each in-neighbor slice comes out sorted as well.
        order = np.argsort(self.out_targets, kind="stable")
        in_sources = sources[order]
        in_probs = self.out_probs[order]
        return in_offsets, in_sources, in_probs

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NodeNotFoundError(node, self.num_nodes)

    def out_neighbors(self, node: int) -> np.ndarray:
        """Out-neighbor ids of ``node`` (a CSR slice; do not mutate)."""
        self._check_node(node)
        return self.out_targets[self.out_offsets[node] : self.out_offsets[node + 1]]

    def out_edge_probs(self, node: int) -> np.ndarray:
        """Propagation probabilities aligned with :meth:`out_neighbors`."""
        self._check_node(node)
        return self.out_probs[self.out_offsets[node] : self.out_offsets[node + 1]]

    def in_neighbors(self, node: int) -> np.ndarray:
        """In-neighbor ids of ``node`` (a transpose-CSR slice)."""
        self._check_node(node)
        return self.in_sources[self.in_offsets[node] : self.in_offsets[node + 1]]

    def in_edge_probs(self, node: int) -> np.ndarray:
        """Probabilities of the edges *into* ``node``, aligned with
        :meth:`in_neighbors`."""
        self._check_node(node)
        return self.in_probs[self.in_offsets[node] : self.in_offsets[node + 1]]

    def out_degree(self, node: int) -> int:
        """Number of out-edges of ``node``."""
        self._check_node(node)
        return int(self.out_offsets[node + 1] - self.out_offsets[node])

    def in_degree(self, node: int) -> int:
        """Number of in-edges of ``node``."""
        self._check_node(node)
        return int(self.in_offsets[node + 1] - self.in_offsets[node])

    def out_degrees(self) -> np.ndarray:
        """Vector of all out-degrees."""
        return np.diff(self.out_offsets)

    def in_degrees(self) -> np.ndarray:
        """Vector of all in-degrees."""
        return np.diff(self.in_offsets)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(source, target, probability)`` triples."""
        for u in range(self.num_nodes):
            lo, hi = self.out_offsets[u], self.out_offsets[u + 1]
            for idx in range(lo, hi):
                yield u, int(self.out_targets[idx]), float(self.out_probs[idx])

    def has_edge(self, source: int, target: int) -> bool:
        """Return whether the directed edge ``(source, target)`` exists."""
        self._check_node(source)
        self._check_node(target)
        neighbors = self.out_neighbors(source)
        # Neighbor slices are sorted by the builder, enabling binary search.
        idx = int(np.searchsorted(neighbors, target))
        return idx < neighbors.size and neighbors[idx] == target

    def edge_probability(self, source: int, target: int) -> float:
        """Probability of edge ``(source, target)``; raises if absent."""
        neighbors = self.out_neighbors(source)
        idx = int(np.searchsorted(neighbors, target))
        if idx >= neighbors.size or neighbors[idx] != target:
            raise GraphError(f"edge ({source}, {target}) does not exist")
        return float(self.out_edge_probs(source)[idx])

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def transpose(self) -> "DiGraph":
        """Return the transpose graph ``G^T`` (edge probabilities carried over)."""
        transposed = DiGraph.__new__(DiGraph)
        transposed.num_nodes = self.num_nodes
        transposed.num_edges = self.num_edges
        transposed.out_offsets = self.in_offsets
        transposed.out_targets = self.in_sources
        transposed.out_probs = self.in_probs
        transposed.in_offsets = self.out_offsets
        transposed.in_sources = self.out_targets
        transposed.in_probs = self.out_probs
        return transposed

    def with_probabilities(self, probs: np.ndarray) -> "DiGraph":
        """Return a copy of this graph with new out-edge probabilities.

        ``probs`` must be aligned with ``out_targets`` (same edge order).
        """
        probs = np.ascontiguousarray(probs, dtype=np.float64)
        if probs.shape != (self.num_edges,):
            raise GraphError(
                f"probs must have length m={self.num_edges}, got {probs.shape}"
            )
        return DiGraph(self.num_nodes, self.out_offsets, self.out_targets, probs)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiGraph(n={self.num_nodes}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and np.array_equal(self.out_offsets, other.out_offsets)
            and np.array_equal(self.out_targets, other.out_targets)
            and np.array_equal(self.out_probs, other.out_probs)
        )

    def __hash__(self) -> int:
        return hash((self.num_nodes, self.num_edges))
