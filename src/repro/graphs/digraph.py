"""Immutable CSR (compressed sparse row) directed graph.

The whole library operates on this one graph type.  Nodes are dense integer
ids ``0 .. n-1``.  Edges are stored twice — once in out-adjacency (CSR) and
once in in-adjacency (CSC-like) — because forward diffusion walks
out-neighbors while reverse-reachable (RR) sampling walks in-neighbors.

Each directed edge carries a propagation probability in ``[0, 1]``; the
probability arrays are aligned with the adjacency arrays, so the probability
of edge ``(u, v)`` is found at the same index as ``v`` in ``u``'s
out-neighbor slice.

Construction goes through :class:`repro.graphs.build.GraphBuilder`; this
class only validates and indexes already-sorted arrays.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.exceptions import GraphError, NodeNotFoundError
from repro.utils.spill import empty_array, is_spill_backed, pack_array, unpack_array

__all__ = ["DiGraph"]

#: Edge-array validation and scan chunk (entries, not bytes): large enough
#: to amortize numpy call overhead, small enough that per-chunk transients
#: stay a few tens of MB even for multi-hundred-million-edge graphs.
_SCAN_CHUNK = 1 << 22


class DiGraph:
    """A fixed directed graph with per-edge propagation probabilities.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``; node ids are ``0 .. n-1``.
    out_offsets, out_targets:
        CSR arrays: out-neighbors of ``u`` are
        ``out_targets[out_offsets[u]:out_offsets[u + 1]]``.
    out_probs:
        Propagation probability of each out-edge, aligned with
        ``out_targets``.

    Notes
    -----
    The in-adjacency (transpose) arrays are derived in the constructor.  The
    transpose preserves edge probabilities: the probability attached to the
    reverse edge ``(v, u)`` equals the probability of the original edge
    ``(u, v)``, exactly as required by the polling method of Section 8
    ("the propagation probability of an edge (v, u) in G^T is pp_uv").
    """

    __slots__ = (
        "num_nodes",
        "num_edges",
        "out_offsets",
        "out_targets",
        "out_probs",
        "in_offsets",
        "in_sources",
        "in_probs",
    )

    def __init__(
        self,
        num_nodes: int,
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        out_probs: np.ndarray,
    ) -> None:
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        out_offsets = np.ascontiguousarray(out_offsets, dtype=np.int64)
        out_targets = np.ascontiguousarray(out_targets, dtype=np.int32)
        out_probs = np.ascontiguousarray(out_probs, dtype=np.float64)
        if out_offsets.shape != (num_nodes + 1,):
            raise GraphError(
                f"out_offsets must have length n+1={num_nodes + 1}, got {out_offsets.shape}"
            )
        if out_offsets[0] != 0 or np.any(np.diff(out_offsets) < 0):
            raise GraphError("out_offsets must start at 0 and be non-decreasing")
        num_edges = int(out_offsets[-1])
        if out_targets.shape != (num_edges,) or out_probs.shape != (num_edges,):
            raise GraphError("out_targets/out_probs length must equal out_offsets[-1]")
        if num_edges:
            # Every out-neighbor slice must be strictly increasing: sorted
            # order backs has_edge's binary search, and uniqueness backs the
            # vectorized cascade frontier (which stamps a whole neighbor
            # batch at once and does no in-batch dedup).  Both edge-length
            # scans run chunked so validation never materializes an m-sized
            # transient (the arrays themselves may be memmap-backed and
            # much larger than memory).
            slice_starts = out_offsets[:-1][np.diff(out_offsets) > 0]
            for lo in range(0, num_edges, _SCAN_CHUNK):
                hi = min(lo + _SCAN_CHUNK, num_edges)
                chunk = np.asarray(out_targets[lo:hi])
                if int(chunk.min()) < 0 or int(chunk.max()) >= num_nodes:
                    raise GraphError("edge target out of range")
                if lo == 0 and hi == 1:
                    continue
                prev = np.asarray(out_targets[max(lo - 1, 0) : hi - 1])
                flat = chunk[1 if lo == 0 else 0 :] <= prev
                if np.any(flat):
                    first = int(
                        np.searchsorted(slice_starts, (1 if lo == 0 else lo))
                    )
                    last = int(np.searchsorted(slice_starts, hi))
                    exempt = np.zeros(flat.size, dtype=bool)
                    exempt[
                        slice_starts[first:last] - (1 if lo == 0 else lo)
                    ] = True
                    if np.any(flat & ~exempt):
                        raise GraphError(
                            "out-neighbor slices must be sorted with no "
                            "duplicate targets"
                        )
            for lo in range(0, num_edges, _SCAN_CHUNK):
                chunk = np.asarray(out_probs[lo : lo + _SCAN_CHUNK])
                if (
                    np.any(chunk < 0.0)
                    or np.any(chunk > 1.0)
                    or np.any(np.isnan(chunk))
                ):
                    raise GraphError("edge probabilities must lie in [0, 1]")

        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.out_offsets = out_offsets
        self.out_targets = out_targets
        self.out_probs = out_probs
        self.in_offsets, self.in_sources, self.in_probs = self._build_in_adjacency()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_csr_pair(
        cls,
        num_nodes: int,
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        out_probs: np.ndarray,
        in_offsets: np.ndarray,
        in_sources: np.ndarray,
        in_probs: np.ndarray,
    ) -> "DiGraph":
        """Adopt pre-built out- *and* in-adjacency arrays without rebuilding.

        The trusted constructor for producers that already hold both CSR
        directions — the streaming generator and the binary graph loader.
        It skips the O(m log m) transpose derivation and the edge-length
        scans of ``__init__`` (the producers guarantee sortedness by
        construction), checking only the O(n) offset invariants, so a
        memmap-backed LiveJournal-scale graph constructs without pulling
        its edge arrays through the heap.  Arrays are adopted as given
        when already at the canonical dtypes (memmaps pass through
        untouched); in-arrays may alias out-arrays (symmetric graphs).
        """
        def adopt(array: np.ndarray, dtype) -> np.ndarray:
            # ascontiguousarray would re-wrap an np.memmap as a plain
            # ndarray view, losing the file identity that by-reference
            # pickling needs — adopt matching arrays untouched instead.
            if (
                isinstance(array, np.ndarray)
                and array.dtype == np.dtype(dtype)
                and array.flags["C_CONTIGUOUS"]
            ):
                return array
            return np.ascontiguousarray(array, dtype=dtype)

        graph = cls.__new__(cls)
        graph.num_nodes = int(num_nodes)
        out_offsets = adopt(out_offsets, np.int64)
        in_offsets = adopt(in_offsets, np.int64)
        for name, offsets in (("out", out_offsets), ("in", in_offsets)):
            if offsets.shape != (graph.num_nodes + 1,):
                raise GraphError(
                    f"{name}_offsets must have length n+1={graph.num_nodes + 1}, "
                    f"got {offsets.shape}"
                )
            if offsets[0] != 0 or np.any(np.diff(offsets) < 0):
                raise GraphError(
                    f"{name}_offsets must start at 0 and be non-decreasing"
                )
        num_edges = int(out_offsets[-1])
        if int(in_offsets[-1]) != num_edges:
            raise GraphError(
                f"in/out CSR edge counts disagree: {int(in_offsets[-1])} != "
                f"{num_edges}"
            )
        graph.num_edges = num_edges
        graph.out_offsets = out_offsets
        graph.out_targets = adopt(out_targets, np.int32)
        graph.out_probs = adopt(out_probs, np.float64)
        graph.in_offsets = in_offsets
        graph.in_sources = adopt(in_sources, np.int32)
        graph.in_probs = adopt(in_probs, np.float64)
        for name, array in (
            ("out_targets", graph.out_targets),
            ("out_probs", graph.out_probs),
            ("in_sources", graph.in_sources),
            ("in_probs", graph.in_probs),
        ):
            if array.shape != (num_edges,):
                raise GraphError(
                    f"{name} length must equal the edge count {num_edges}, "
                    f"got {array.shape}"
                )
        return graph

    def _build_in_adjacency(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Derive the transpose adjacency from the out-CSR arrays.

        Destinations inherit the out-arrays' backing: a graph whose CSR
        lives in spill files gets spill-backed transpose arrays too, so
        constructing it never doubles heap RSS.  (The ``argsort`` scratch
        is still an m-sized heap array; the streaming generator and
        :func:`repro.graphs.io.load_csr` avoid this method entirely for
        the graphs where that would matter.)
        """
        n = self.num_nodes
        backing = "mmap" if is_spill_backed(self.out_targets) else None
        in_degree = np.bincount(self.out_targets, minlength=n).astype(np.int64)
        in_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_degree, out=in_offsets[1:])
        sources = np.repeat(
            np.arange(n, dtype=np.int32), np.diff(self.out_offsets).astype(np.int64)
        )
        # Stable sort groups edges by target while keeping sources ordered,
        # so each in-neighbor slice comes out sorted as well.
        order = np.argsort(self.out_targets, kind="stable")
        in_sources = empty_array(
            self.num_edges, np.int32, backing=backing, name_hint="in-sources"
        )
        in_probs = empty_array(
            self.num_edges, np.float64, backing=backing, name_hint="in-probs"
        )
        np.take(sources, order, out=in_sources)
        np.take(self.out_probs, order, out=in_probs)
        return in_offsets, in_sources, in_probs

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NodeNotFoundError(node, self.num_nodes)

    def out_neighbors(self, node: int) -> np.ndarray:
        """Out-neighbor ids of ``node`` (a CSR slice; do not mutate)."""
        self._check_node(node)
        return self.out_targets[self.out_offsets[node] : self.out_offsets[node + 1]]

    def out_edge_probs(self, node: int) -> np.ndarray:
        """Propagation probabilities aligned with :meth:`out_neighbors`."""
        self._check_node(node)
        return self.out_probs[self.out_offsets[node] : self.out_offsets[node + 1]]

    def in_neighbors(self, node: int) -> np.ndarray:
        """In-neighbor ids of ``node`` (a transpose-CSR slice)."""
        self._check_node(node)
        return self.in_sources[self.in_offsets[node] : self.in_offsets[node + 1]]

    def in_edge_probs(self, node: int) -> np.ndarray:
        """Probabilities of the edges *into* ``node``, aligned with
        :meth:`in_neighbors`."""
        self._check_node(node)
        return self.in_probs[self.in_offsets[node] : self.in_offsets[node + 1]]

    def out_degree(self, node: int) -> int:
        """Number of out-edges of ``node``."""
        self._check_node(node)
        return int(self.out_offsets[node + 1] - self.out_offsets[node])

    def in_degree(self, node: int) -> int:
        """Number of in-edges of ``node``."""
        self._check_node(node)
        return int(self.in_offsets[node + 1] - self.in_offsets[node])

    def out_degrees(self) -> np.ndarray:
        """Vector of all out-degrees."""
        return np.diff(self.out_offsets)

    def in_degrees(self) -> np.ndarray:
        """Vector of all in-degrees."""
        return np.diff(self.in_offsets)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(source, target, probability)`` triples."""
        for u in range(self.num_nodes):
            lo, hi = self.out_offsets[u], self.out_offsets[u + 1]
            for idx in range(lo, hi):
                yield u, int(self.out_targets[idx]), float(self.out_probs[idx])

    def has_edge(self, source: int, target: int) -> bool:
        """Return whether the directed edge ``(source, target)`` exists."""
        self._check_node(source)
        self._check_node(target)
        neighbors = self.out_neighbors(source)
        # Neighbor slices are sorted by the builder, enabling binary search.
        idx = int(np.searchsorted(neighbors, target))
        return idx < neighbors.size and neighbors[idx] == target

    def edge_probability(self, source: int, target: int) -> float:
        """Probability of edge ``(source, target)``; raises if absent."""
        neighbors = self.out_neighbors(source)
        idx = int(np.searchsorted(neighbors, target))
        if idx >= neighbors.size or neighbors[idx] != target:
            raise GraphError(f"edge ({source}, {target}) does not exist")
        return float(self.out_edge_probs(source)[idx])

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def transpose(self) -> "DiGraph":
        """Return the transpose graph ``G^T`` (edge probabilities carried over)."""
        transposed = DiGraph.__new__(DiGraph)
        transposed.num_nodes = self.num_nodes
        transposed.num_edges = self.num_edges
        transposed.out_offsets = self.in_offsets
        transposed.out_targets = self.in_sources
        transposed.out_probs = self.in_probs
        transposed.in_offsets = self.out_offsets
        transposed.in_sources = self.out_targets
        transposed.in_probs = self.out_probs
        return transposed

    def with_probabilities(self, probs: np.ndarray) -> "DiGraph":
        """Return a copy of this graph with new out-edge probabilities.

        ``probs`` must be aligned with ``out_targets`` (same edge order).
        """
        probs = np.ascontiguousarray(probs, dtype=np.float64)
        if probs.shape != (self.num_edges,):
            raise GraphError(
                f"probs must have length m={self.num_edges}, got {probs.shape}"
            )
        return DiGraph(self.num_nodes, self.out_offsets, self.out_targets, probs)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __getstate__(self):
        # Spill-backed arrays pickle by reference (path + dtype + shape),
        # not by value: a worker pool ships the graph once per worker via
        # the pool initializer, and rehydrating a multi-GB memmap into
        # pickle bytes would recreate exactly the heap copy the spill
        # backing exists to avoid.  Heap arrays pickle by value as before.
        return {slot: pack_array(getattr(self, slot)) for slot in self.__slots__}

    def __setstate__(self, state) -> None:
        for slot in self.__slots__:
            object.__setattr__(self, slot, unpack_array(state[slot]))

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiGraph(n={self.num_nodes}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and np.array_equal(self.out_offsets, other.out_offsets)
            and np.array_equal(self.out_targets, other.out_targets)
            and np.array_equal(self.out_probs, other.out_probs)
        )

    def __hash__(self) -> int:
        return hash((self.num_nodes, self.num_edges))
