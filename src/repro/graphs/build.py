"""Mutable graph construction finalized into immutable CSR :class:`DiGraph`.

Typical usage::

    builder = GraphBuilder()
    builder.add_edge(0, 1)
    builder.add_edge(1, 2, probability=0.3)
    graph = builder.build()

or, for bulk data, :func:`from_edges`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.digraph import DiGraph

__all__ = ["GraphBuilder", "from_edges"]

EdgeLike = Tuple[int, int]
WeightedEdgeLike = Tuple[int, int, float]


class GraphBuilder:
    """Accumulates edges, then builds a validated :class:`DiGraph`.

    Parameters
    ----------
    num_nodes:
        Fix the node count up-front; if ``None`` the count is inferred as
        ``max(node id) + 1`` at build time (isolated trailing nodes then need
        an explicit count).
    default_probability:
        Probability assigned to edges added without one.

    Duplicate directed edges are collapsed at build time, keeping the last
    probability added — matching the semantics of re-assigning a weight.
    """

    def __init__(self, num_nodes: Optional[int] = None, default_probability: float = 1.0) -> None:
        if num_nodes is not None and num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        if not 0.0 <= default_probability <= 1.0:
            raise GraphError("default_probability must lie in [0, 1]")
        self._num_nodes = num_nodes
        self._default_probability = default_probability
        self._sources: list[int] = []
        self._targets: list[int] = []
        self._probs: list[float] = []

    def add_edge(self, source: int, target: int, probability: Optional[float] = None) -> "GraphBuilder":
        """Add a directed edge; returns ``self`` for chaining."""
        if source < 0 or target < 0:
            raise GraphError(f"node ids must be non-negative, got ({source}, {target})")
        if probability is None:
            probability = self._default_probability
        if not 0.0 <= probability <= 1.0:
            raise GraphError(f"edge probability must lie in [0, 1], got {probability}")
        if self._num_nodes is not None and (source >= self._num_nodes or target >= self._num_nodes):
            raise GraphError(
                f"edge ({source}, {target}) exceeds fixed node count {self._num_nodes}"
            )
        self._sources.append(source)
        self._targets.append(target)
        self._probs.append(probability)
        return self

    def add_undirected_edge(
        self, u: int, v: int, probability: Optional[float] = None
    ) -> "GraphBuilder":
        """Add both directions ``(u, v)`` and ``(v, u)``.

        This mirrors the paper's preprocessing (Section 9.1): "if a network
        is undirected, every undirected edge (u, v) is processed as two
        directed edges".
        """
        self.add_edge(u, v, probability)
        self.add_edge(v, u, probability)
        return self

    def add_edges(self, edges: Iterable[Sequence[float]]) -> "GraphBuilder":
        """Add many edges given as ``(u, v)`` or ``(u, v, probability)``."""
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(int(edge[0]), int(edge[1]))
            elif len(edge) == 3:
                self.add_edge(int(edge[0]), int(edge[1]), float(edge[2]))
            else:
                raise GraphError(f"edges must be 2- or 3-tuples, got {edge!r}")
        return self

    @property
    def num_pending_edges(self) -> int:
        """Number of edges added so far (before de-duplication)."""
        return len(self._sources)

    def build(self, allow_self_loops: bool = False) -> DiGraph:
        """Finalize into an immutable CSR :class:`DiGraph`.

        Self-loops are dropped by default (they never affect influence
        spread); pass ``allow_self_loops=True`` to keep them.
        """
        sources = np.asarray(self._sources, dtype=np.int64)
        targets = np.asarray(self._targets, dtype=np.int64)
        probs = np.asarray(self._probs, dtype=np.float64)

        if self._num_nodes is not None:
            n = self._num_nodes
        elif sources.size:
            n = int(max(sources.max(), targets.max())) + 1
        else:
            n = 0

        if not allow_self_loops and sources.size:
            keep = sources != targets
            sources, targets, probs = sources[keep], targets[keep], probs[keep]

        if sources.size:
            # Sort by (source, target); stable so the *last* duplicate wins
            # when we subsequently keep the final entry of each group.
            order = np.lexsort((targets, sources))
            sources, targets, probs = sources[order], targets[order], probs[order]
            key_change = np.empty(sources.size, dtype=bool)
            key_change[-1] = True
            key_change[:-1] = (sources[:-1] != sources[1:]) | (targets[:-1] != targets[1:])
            sources, targets, probs = sources[key_change], targets[key_change], probs[key_change]

        out_degree = np.bincount(sources, minlength=n) if sources.size else np.zeros(n, dtype=np.int64)
        out_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(out_degree, out=out_offsets[1:])
        return DiGraph(n, out_offsets, targets.astype(np.int32), probs)


def from_edges(
    edges: Iterable[Sequence[float]],
    num_nodes: Optional[int] = None,
    default_probability: float = 1.0,
    undirected: bool = False,
) -> DiGraph:
    """Build a :class:`DiGraph` from an iterable of edge tuples.

    Parameters
    ----------
    edges:
        ``(u, v)`` or ``(u, v, probability)`` tuples.
    num_nodes:
        Optional explicit node count (for trailing isolated nodes).
    default_probability:
        Probability used for 2-tuples.
    undirected:
        If true, each input edge is added in both directions.
    """
    builder = GraphBuilder(num_nodes=num_nodes, default_probability=default_probability)
    for edge in edges:
        if len(edge) == 2:
            u, v, p = int(edge[0]), int(edge[1]), None
        elif len(edge) == 3:
            u, v, p = int(edge[0]), int(edge[1]), float(edge[2])
        else:
            raise GraphError(f"edges must be 2- or 3-tuples, got {edge!r}")
        if undirected:
            builder.add_undirected_edge(u, v, p)
        else:
            builder.add_edge(u, v, p)
    return builder.build()
