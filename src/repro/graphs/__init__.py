"""Graph substrate: CSR digraphs, builders, generators, IO and edge weights."""

from repro.graphs.build import GraphBuilder, from_edges
from repro.graphs.communities import label_propagation_communities
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    barabasi_albert,
    ca_astroph_like,
    com_dblp_like,
    com_lj_like,
    complete_graph,
    erdos_renyi,
    forest_fire,
    isolated_nodes,
    path_graph,
    powerlaw_configuration,
    star_graph,
    watts_strogatz,
    wiki_vote_like,
)
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.stats import GraphStats, describe
from repro.graphs.weights import (
    assign_constant_probabilities,
    assign_trivalency_probabilities,
    assign_weighted_cascade,
)

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "from_edges",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "powerlaw_configuration",
    "forest_fire",
    "complete_graph",
    "path_graph",
    "star_graph",
    "isolated_nodes",
    "wiki_vote_like",
    "ca_astroph_like",
    "com_dblp_like",
    "com_lj_like",
    "read_edge_list",
    "write_edge_list",
    "GraphStats",
    "describe",
    "label_propagation_communities",
    "assign_weighted_cascade",
    "assign_constant_probabilities",
    "assign_trivalency_probabilities",
]
