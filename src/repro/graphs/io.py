"""Graph input/output: SNAP-style edge lists and binary CSR directories.

The SNAP text format is one edge per line — ``source<TAB>target`` — with
``#`` comment lines.  An optional third column carries the edge probability.
Node ids in the file may be arbitrary non-negative integers; they are
remapped to a dense ``0..n-1`` range, and :func:`read_edge_list` returns the
mapping so results can be reported in original ids.

For graphs too large to re-parse (or re-generate) per run there is a
binary form: :func:`save_csr` writes both CSR directions as plain
``.npy`` files in a directory, and :func:`load_csr` reopens them —
``mmap=True`` maps the edge arrays straight from disk (``np.memmap``),
so a com-LiveJournal-scale graph loads in milliseconds without heap
copies and round-trips spill-backed graphs exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.build import GraphBuilder
from repro.graphs.digraph import DiGraph

__all__ = ["read_edge_list", "write_edge_list", "save_csr", "load_csr"]

PathLike = Union[str, Path]


def read_edge_list(
    path: PathLike,
    undirected: bool = False,
    default_probability: float = 1.0,
    relabel: bool = True,
) -> Tuple[DiGraph, Dict[int, int]]:
    """Read a SNAP-style edge list.

    Parameters
    ----------
    path:
        Text file with ``u v [probability]`` per line; ``#`` starts a comment.
    undirected:
        If true each line is added in both directions (the paper's
        treatment of undirected networks).
    default_probability:
        Probability used when the line has no third column.
    relabel:
        If true (default) arbitrary ids are compacted to ``0..n-1``.

    Returns
    -------
    (graph, id_map):
        ``id_map`` maps original file id -> dense graph id (identity when
        ``relabel=False``).
    """
    path = Path(path)
    id_map: Dict[int, int] = {}

    def dense(original: int) -> int:
        if not relabel:
            return original
        if original not in id_map:
            id_map[original] = len(id_map)
        return id_map[original]

    builder = GraphBuilder(default_probability=default_probability)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    f"{path}:{line_number}: expected 'u v [prob]', got {raw!r}"
                )
            try:
                u, v = dense(int(parts[0])), dense(int(parts[1]))
                prob = float(parts[2]) if len(parts) == 3 else None
            except ValueError as exc:
                raise GraphError(f"{path}:{line_number}: unparsable edge {raw!r}") from exc
            if undirected:
                builder.add_undirected_edge(u, v, prob)
            else:
                builder.add_edge(u, v, prob)
    graph = builder.build()
    if not relabel:
        id_map = {i: i for i in range(graph.num_nodes)}
    return graph, id_map


def write_edge_list(
    graph: DiGraph,
    path: PathLike,
    write_probabilities: bool = True,
    header: Optional[str] = None,
) -> None:
    """Write a graph as a SNAP-style edge list (dense 0-based ids)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for u, v, prob in graph.edges():
            if write_probabilities:
                handle.write(f"{u}\t{v}\t{prob:.10g}\n")
            else:
                handle.write(f"{u}\t{v}\n")


_CSR_ARRAYS = (
    "out_offsets",
    "out_targets",
    "out_probs",
    "in_offsets",
    "in_sources",
    "in_probs",
)


def save_csr(graph: DiGraph, path: PathLike) -> None:
    """Write both CSR directions of ``graph`` as ``.npy`` files in a dir.

    Aliased in-arrays (symmetric graphs from the streaming generator
    share their transpose with the out-adjacency) are recorded in the
    manifest instead of being written twice, halving the on-disk size
    and restoring the aliasing on load.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    aliased = bool(
        graph.in_sources is graph.out_targets
        and graph.in_offsets is graph.out_offsets
        and graph.in_probs is graph.out_probs
    )
    names = _CSR_ARRAYS[:3] if aliased else _CSR_ARRAYS
    for name in names:
        np.save(path / f"{name}.npy", np.asarray(getattr(graph, name)))
    manifest = {
        "format": "repro.graphs.csr/1",
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
        "symmetric": aliased,
    }
    (path / "graph.json").write_text(json.dumps(manifest, indent=2) + "\n")


def load_csr(path: PathLike, mmap: bool = True) -> DiGraph:
    """Load a :func:`save_csr` directory; ``mmap=True`` maps edge arrays.

    With ``mmap`` the graph's arrays are read-only ``np.memmap``s over
    the saved files — construction is O(n) (offset validation only, via
    :meth:`DiGraph.from_csr_pair`) and the arrays pickle by reference
    into pool workers.  ``mmap=False`` loads plain heap arrays.
    """
    path = Path(path)
    manifest_path = path / "graph.json"
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise GraphError(f"unreadable CSR graph manifest {manifest_path}: {exc}") from exc
    if manifest.get("format") != "repro.graphs.csr/1":
        raise GraphError(
            f"{manifest_path}: unsupported CSR graph format "
            f"{manifest.get('format')!r}"
        )
    mode = "r" if mmap else None

    def load(name: str) -> np.ndarray:
        try:
            return np.load(path / f"{name}.npy", mmap_mode=mode)
        except (OSError, ValueError) as exc:
            raise GraphError(f"unreadable CSR array {path / name}: {exc}") from exc

    out_offsets = load("out_offsets")
    out_targets = load("out_targets")
    out_probs = load("out_probs")
    if manifest.get("symmetric"):
        in_offsets, in_sources, in_probs = out_offsets, out_targets, out_probs
    else:
        in_offsets = load("in_offsets")
        in_sources = load("in_sources")
        in_probs = load("in_probs")
    return DiGraph.from_csr_pair(
        int(manifest["num_nodes"]),
        out_offsets,
        out_targets,
        out_probs,
        in_offsets,
        in_sources,
        in_probs,
    )
