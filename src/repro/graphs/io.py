"""SNAP-style edge-list input/output.

The SNAP text format is one edge per line — ``source<TAB>target`` — with
``#`` comment lines.  An optional third column carries the edge probability.
Node ids in the file may be arbitrary non-negative integers; they are
remapped to a dense ``0..n-1`` range, and :func:`read_edge_list` returns the
mapping so results can be reported in original ids.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.exceptions import GraphError
from repro.graphs.build import GraphBuilder
from repro.graphs.digraph import DiGraph

__all__ = ["read_edge_list", "write_edge_list"]

PathLike = Union[str, Path]


def read_edge_list(
    path: PathLike,
    undirected: bool = False,
    default_probability: float = 1.0,
    relabel: bool = True,
) -> Tuple[DiGraph, Dict[int, int]]:
    """Read a SNAP-style edge list.

    Parameters
    ----------
    path:
        Text file with ``u v [probability]`` per line; ``#`` starts a comment.
    undirected:
        If true each line is added in both directions (the paper's
        treatment of undirected networks).
    default_probability:
        Probability used when the line has no third column.
    relabel:
        If true (default) arbitrary ids are compacted to ``0..n-1``.

    Returns
    -------
    (graph, id_map):
        ``id_map`` maps original file id -> dense graph id (identity when
        ``relabel=False``).
    """
    path = Path(path)
    id_map: Dict[int, int] = {}

    def dense(original: int) -> int:
        if not relabel:
            return original
        if original not in id_map:
            id_map[original] = len(id_map)
        return id_map[original]

    builder = GraphBuilder(default_probability=default_probability)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    f"{path}:{line_number}: expected 'u v [prob]', got {raw!r}"
                )
            try:
                u, v = dense(int(parts[0])), dense(int(parts[1]))
                prob = float(parts[2]) if len(parts) == 3 else None
            except ValueError as exc:
                raise GraphError(f"{path}:{line_number}: unparsable edge {raw!r}") from exc
            if undirected:
                builder.add_undirected_edge(u, v, prob)
            else:
                builder.add_edge(u, v, prob)
    graph = builder.build()
    if not relabel:
        id_map = {i: i for i in range(graph.num_nodes)}
    return graph, id_map


def write_edge_list(
    graph: DiGraph,
    path: PathLike,
    write_probabilities: bool = True,
    header: Optional[str] = None,
) -> None:
    """Write a graph as a SNAP-style edge list (dense 0-based ids)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for u, v, prob in graph.edges():
            if write_probabilities:
                handle.write(f"{u}\t{v}\t{prob:.10g}\n")
            else:
                handle.write(f"{u}\t{v}\n")
