"""repro — Continuous Influence Maximization (SIGMOD 2016 reproduction).

What discounts should we offer to social network users?  This library
implements the continuous influence maximization (CIM) problem of Yang,
Mao, Pei & He (SIGMOD 2016) end to end: graph substrate, IC/LT/triggering
diffusion models, RR-set polling, discrete-IM baselines, and the paper's
Unified Discount and Coordinate Descent solvers.

Quickstart::

    from repro import (
        CIMProblem, IndependentCascade, paper_mixture, solve,
        erdos_renyi, assign_weighted_cascade,
    )

    graph = assign_weighted_cascade(erdos_renyi(500, 0.02, seed=1), alpha=1.0)
    problem = CIMProblem(
        IndependentCascade(graph), paper_mixture(500, seed=2), budget=10,
    )
    result = solve(problem, "cd", seed=3)
    print(result.spread_estimate, result.configuration)

See README.md and DESIGN.md for the full architecture.
"""

from repro.analysis import budget_frontier, compare_methods, summarize_plan
from repro.core import (
    AccessSet,
    BudgetConstraint,
    CIMProblem,
    CallableCurve,
    ComposedConstraint,
    ConcaveCurve,
    Configuration,
    Constraint,
    CurvePopulation,
    ExactOracle,
    FixedSampleOracle,
    HypergraphOracle,
    INSENSITIVE,
    LINEAR,
    LinearCurve,
    LogisticCurve,
    MonteCarloOracle,
    PerUserCap,
    PiecewiseLinearCurve,
    PowerCurve,
    QuadraticCurve,
    SENSITIVE,
    SeedProbabilityCurve,
    SolveResult,
    SpreadOracle,
    TopKAccess,
    available_methods,
    constraints_from_spec,
    coordinate_descent,
    coordinate_descent_hypergraph,
    exact_spread_ic,
    exact_ui_ic,
    expected_cost,
    frank_wolfe,
    paper_mixture,
    project_capped_simplex,
    projected_gradient_ascent,
    register_solver,
    reset_solvers,
    solve,
    unified_discount,
    unified_discount_expected,
    unregister_solver,
)
from repro.core.exact_lt import exact_spread_lt, exact_ui_lt
from repro.diffusion import (
    DiffusionModel,
    IndependentCascade,
    LinearThreshold,
    TriggeringModel,
    estimate_configuration_spread,
    estimate_spread,
)
from repro.diffusion.batch import batch_configuration_spread_ic, batch_spread_ic
from repro.discrete import celf_greedy, degree_seeds, random_seeds, ris_influence_maximization
from repro.exceptions import (
    BudgetError,
    CheckpointError,
    ConfigurationError,
    ConstraintError,
    CurveError,
    DeadlineExceeded,
    EstimationError,
    GraphError,
    ObservabilityError,
    PartialResultWarning,
    PoisonChunkError,
    PoolBrokenError,
    ReproError,
    SolverError,
    WorkerPoolError,
)
from repro.graphs import (
    DiGraph,
    GraphBuilder,
    assign_constant_probabilities,
    assign_weighted_cascade,
    barabasi_albert,
    erdos_renyi,
    from_edges,
    powerlaw_configuration,
    read_edge_list,
    star_graph,
    watts_strogatz,
    write_edge_list,
)
from repro.io import (
    load_configuration,
    load_solve_result,
    save_configuration,
    save_solve_result,
)
from repro.obs import (
    MetricsRegistry,
    NULL_METRICS,
    NULL_TRACER,
    Tracer,
    get_metrics,
    get_tracer,
    observe,
)
from repro.parallel import (
    SupervisionPolicy,
    partition_chunks,
    resolve_supervision,
    resolve_workers,
    run_chunks,
)
from repro.rrset import RRHypergraph, HypergraphObjective, sample_rr_sets
from repro.rrset.imm import imm_hypergraph
from repro.runtime import (
    CheckpointStore,
    Deadline,
    FaultInjector,
    InjectedFault,
    ManualClock,
    RunBudget,
    as_deadline,
    content_key,
    retry,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "CIMProblem",
    "Configuration",
    "CurvePopulation",
    "paper_mixture",
    "SeedProbabilityCurve",
    "LinearCurve",
    "QuadraticCurve",
    "ConcaveCurve",
    "PowerCurve",
    "LogisticCurve",
    "PiecewiseLinearCurve",
    "CallableCurve",
    "SENSITIVE",
    "LINEAR",
    "INSENSITIVE",
    "SpreadOracle",
    "ExactOracle",
    "MonteCarloOracle",
    "HypergraphOracle",
    "FixedSampleOracle",
    "coordinate_descent",
    "coordinate_descent_hypergraph",
    "unified_discount",
    "solve",
    "SolveResult",
    "available_methods",
    "register_solver",
    "unregister_solver",
    "reset_solvers",
    "projected_gradient_ascent",
    "frank_wolfe",
    "project_capped_simplex",
    # constraints (constrained scenarios)
    "Constraint",
    "BudgetConstraint",
    "PerUserCap",
    "AccessSet",
    "TopKAccess",
    "ComposedConstraint",
    "constraints_from_spec",
    "exact_spread_ic",
    "exact_ui_ic",
    "exact_spread_lt",
    "exact_ui_lt",
    "expected_cost",
    "unified_discount_expected",
    # analysis
    "summarize_plan",
    "compare_methods",
    "budget_frontier",
    # io
    "save_configuration",
    "load_configuration",
    "save_solve_result",
    "load_solve_result",
    # diffusion
    "DiffusionModel",
    "IndependentCascade",
    "LinearThreshold",
    "TriggeringModel",
    "estimate_spread",
    "estimate_configuration_spread",
    "batch_spread_ic",
    "batch_configuration_spread_ic",
    # discrete
    "celf_greedy",
    "ris_influence_maximization",
    "degree_seeds",
    "random_seeds",
    # graphs
    "DiGraph",
    "GraphBuilder",
    "from_edges",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "powerlaw_configuration",
    "star_graph",
    "assign_weighted_cascade",
    "assign_constant_probabilities",
    "read_edge_list",
    "write_edge_list",
    # rrset
    "RRHypergraph",
    "HypergraphObjective",
    "sample_rr_sets",
    "imm_hypergraph",
    # parallel (deterministic worker-pool sampling)
    "partition_chunks",
    "resolve_workers",
    "run_chunks",
    "SupervisionPolicy",
    "resolve_supervision",
    # obs (tracing spans + metrics)
    "Tracer",
    "MetricsRegistry",
    "observe",
    "get_tracer",
    "get_metrics",
    "NULL_TRACER",
    "NULL_METRICS",
    # runtime (fault-tolerant execution)
    "Deadline",
    "RunBudget",
    "ManualClock",
    "as_deadline",
    "CheckpointStore",
    "content_key",
    "retry",
    "FaultInjector",
    "InjectedFault",
    # exceptions
    "ReproError",
    "GraphError",
    "CurveError",
    "ConfigurationError",
    "BudgetError",
    "SolverError",
    "ConstraintError",
    "EstimationError",
    "DeadlineExceeded",
    "CheckpointError",
    "ObservabilityError",
    "PartialResultWarning",
    "WorkerPoolError",
    "PoisonChunkError",
    "PoolBrokenError",
]
