#!/usr/bin/env python
"""Scenario: pay-on-redemption budgeting and campaign diagnostics.

The paper's budget is a *safe* (worst-case) budget: money is reserved for
every targeted user.  Its future-work section suggests the alternative a
finance team usually prefers — an *expected* budget, because a discount is
only paid when the user actually redeems it.  This script:

1. plans the same campaign under both budget semantics and shows how many
   more users the expected budget reaches;
2. refines the expected-budget plan with spend-preserving coordinate
   descent;
3. prints full plan diagnostics (who gets what, by user segment) via
   ``repro.analysis``;
4. sweeps the budget frontier to find the knee where extra spend stops
   paying; and
5. persists the final plan to JSON and reloads it, as a campaign system
   would.

Run:  python examples/expected_budget_campaign.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    CIMProblem,
    IndependentCascade,
    assign_weighted_cascade,
    budget_frontier,
    expected_cost,
    load_configuration,
    paper_mixture,
    save_configuration,
    summarize_plan,
    unified_discount,
    unified_discount_expected,
)
from repro.core.expected_budget import coordinate_descent_expected
from repro.graphs import wiki_vote_like


def main() -> None:
    graph = assign_weighted_cascade(wiki_vote_like(scale=0.04, seed=31), alpha=1.0)
    population = paper_mixture(graph.num_nodes, seed=32)
    budget = 8.0
    problem = CIMProblem(IndependentCascade(graph), population, budget=budget)
    hypergraph = problem.build_hypergraph(seed=33)

    print(f"network: n={graph.num_nodes}, m={graph.num_edges}, budget={budget:g}\n")

    # --- 1. safe vs expected budget -------------------------------------
    safe = unified_discount(problem, hypergraph)
    expected = unified_discount_expected(problem, hypergraph)
    print("=== same budget, two semantics ===")
    print(
        f"  safe (reserve per user):    {len(safe.targets):4d} users at "
        f"{safe.best_discount:.0%}, spread {safe.spread_estimate:7.1f}"
    )
    print(
        f"  expected (pay on redeem):   {len(expected.targets):4d} users at "
        f"{expected.best_discount:.0%}, spread {expected.spread_estimate:7.1f} "
        f"(expected spend {expected.expected_spend:.2f})\n"
    )

    # --- 2. spend-preserving refinement ---------------------------------
    refined = coordinate_descent_expected(
        problem, hypergraph, expected.configuration, max_rounds=1, grid_step=0.1
    )
    print(
        f"expected-budget CD: spread {expected.spread_estimate:.1f} -> "
        f"{refined.objective_value:.1f} at unchanged expected spend "
        f"{refined.expected_spend:.2f}\n"
    )

    # --- 3. plan diagnostics ---------------------------------------------
    print("=== final plan diagnostics ===")
    summary = summarize_plan(refined.configuration, problem, hypergraph)
    print(summary.as_text())
    print()

    # --- 4. budget frontier ----------------------------------------------
    print("=== budget frontier (safe budget, UD) ===")
    points = budget_frontier(
        problem.model,
        population,
        budgets=(2, 4, 8, 16),
        method="ud",
        hypergraph=hypergraph,
        seed=34,
    )
    for point in points:
        print(
            f"  B={point.budget:5.1f}  spread={point.spread:8.1f}  "
            f"marginal={point.marginal:6.2f} adopters per budget unit"
        )
    print()

    # --- 5. persistence ----------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "campaign_plan.json"
        save_configuration(refined.configuration, path)
        reloaded = load_configuration(path)
        assert reloaded == refined.configuration
        print(
            f"plan saved and reloaded from {path.name}: "
            f"{reloaded.support.size} users, expected spend "
            f"{expected_cost(reloaded, population):.2f}"
        )


if __name__ == "__main__":
    main()
