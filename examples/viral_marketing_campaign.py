#!/usr/bin/env python
"""Scenario: planning a product-launch discount campaign.

A company launches a product on a scale-free social network (a reduced
analogue of SNAP wiki-Vote).  Marketing has segmented users into personas
with *learned* purchase-probability curves:

* "deal hunters"   — convert eagerly at small discounts (concave curve),
* "typical users"  — linear response,
* "skeptics"       — only convert near a free product (steep logistic),

and wants to know: given a budget, is it better to hand out a few free
products (classical influence maximization), one standard coupon tier, or
personalized discounts?  The script sweeps the budget and prints the
campaign plan each strategy produces.

Run:  python examples/viral_marketing_campaign.py
"""

from __future__ import annotations

from collections import Counter

from repro import (
    CIMProblem,
    ConcaveCurve,
    CurvePopulation,
    IndependentCascade,
    LinearCurve,
    LogisticCurve,
    solve,
)
from repro.graphs import assign_weighted_cascade, wiki_vote_like


def build_population(num_users: int):
    """60% deal hunters, 30% typical, 10% skeptics."""
    deal_hunter = ConcaveCurve()
    typical = LinearCurve()
    skeptic = LogisticCurve(steepness=10.0, midpoint=0.7)
    return (
        CurvePopulation.from_mixture(
            num_users,
            [(deal_hunter, 0.60), (typical, 0.30), (skeptic, 0.10)],
            seed=7,
        ),
        {"deal hunter": deal_hunter, "typical": typical, "skeptic": skeptic},
    )


def describe_plan(result, population, personas) -> str:
    """Summarize who gets what under a configuration."""
    config = result.configuration
    support = config.support
    if support.size == 0:
        return "nobody targeted"
    by_persona: Counter[str] = Counter()
    total_discount = 0.0
    for node in support:
        curve = population.curve(int(node))
        for persona_name, persona_curve in personas.items():
            if curve is persona_curve:
                by_persona[persona_name] += 1
        total_discount += config[int(node)]
    persona_text = ", ".join(f"{count} {name}s" for name, count in by_persona.items())
    average = total_discount / support.size
    return f"{support.size} users ({persona_text}), avg discount {average:.0%}"


def main() -> None:
    graph = assign_weighted_cascade(wiki_vote_like(scale=0.05, seed=11), alpha=1.0)
    population, personas = build_population(graph.num_nodes)
    print(f"network: n={graph.num_nodes}, m={graph.num_edges}")
    print(f"personas: {population.curve_counts()}\n")

    for budget in (5.0, 15.0, 30.0):
        problem = CIMProblem(IndependentCascade(graph), population, budget=budget)
        hypergraph = problem.build_hypergraph(seed=13)
        print(f"=== budget {budget:.0f} ===")
        for method, label in (
            ("im", "free products"),
            ("ud", "one coupon tier"),
            ("cd", "personalized discounts"),
        ):
            result = solve(problem, method, hypergraph=hypergraph, seed=17)
            plan = describe_plan(result, population, personas)
            print(
                f"  {label:>22s}: expected adopters {result.spread_estimate:7.1f}  "
                f"— {plan}"
            )
        print()


if __name__ == "__main__":
    main()
