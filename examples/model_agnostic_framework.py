#!/usr/bin/env python
"""Scenario: the framework is influence-model agnostic.

The paper's central framework (Sections 4-7) never assumes a specific
influence model.  This script demonstrates that claim concretely by
solving the *same* discount-allocation problem under three models:

* Independent Cascade (IC),
* Linear Threshold (LT),
* a custom triggering model ("top-2 influencers": each user is only
  triggerable by the two in-neighbors with the strongest edges),

using exactly the same solver code paths — RR-set polling works for any
triggering model, and the general coordinate descent only needs a spread
oracle.

Run:  python examples/model_agnostic_framework.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CIMProblem,
    IndependentCascade,
    LinearThreshold,
    MonteCarloOracle,
    TriggeringModel,
    coordinate_descent,
    paper_mixture,
    solve,
)
from repro.core.configuration import Configuration
from repro.graphs import assign_weighted_cascade, erdos_renyi


def top2_trigger_sampler(node, in_neighbors, in_probs, rng):
    """Triggering distribution: flip coins only for the 2 strongest in-edges."""
    if in_neighbors.size == 0:
        return in_neighbors
    order = np.argsort(in_probs)[::-1][:2]
    strongest = in_neighbors[order]
    strongest_probs = in_probs[order]
    return strongest[rng.random(strongest.size) < strongest_probs]


def main() -> None:
    num_users = 250
    graph = assign_weighted_cascade(erdos_renyi(num_users, 0.03, seed=21), alpha=0.85)
    population = paper_mixture(num_users, seed=22)
    budget = 6.0

    models = {
        "independent cascade": IndependentCascade(graph),
        "linear threshold": LinearThreshold(graph),
        "top-2 triggering": TriggeringModel(graph, top2_trigger_sampler),
    }

    print("=== same CIM pipeline, three influence models ===")
    print(f"{'model':>22s} {'im':>8s} {'ud':>8s} {'cd':>8s}")
    for name, model in models.items():
        problem = CIMProblem(model, population, budget=budget)
        hypergraph = problem.build_hypergraph(num_hyperedges=20000, seed=23)
        spreads = {
            method: solve(problem, method, hypergraph=hypergraph, seed=24).spread_estimate
            for method in ("im", "ud", "cd")
        }
        print(
            f"{name:>22s} {spreads['im']:8.1f} {spreads['ud']:8.1f} {spreads['cd']:8.1f}"
        )

    # The *general* Algorithm-1 coordinate descent with a pure Monte-Carlo
    # oracle — no RR sets, no model internals, just cascade samples.  Run on
    # a smaller instance because MC oracles are expensive.
    print("\n=== general coordinate descent with a Monte-Carlo oracle ===")
    small_graph = assign_weighted_cascade(erdos_renyi(40, 0.08, seed=25), alpha=1.0)
    small_population = paper_mixture(40, seed=26)
    model = LinearThreshold(small_graph)
    oracle = MonteCarloOracle(model, small_population, num_samples=400, seed=27)
    initial = Configuration.uniform(3.0, 40)
    result = coordinate_descent(
        oracle,
        budget=3.0,
        initial=initial,
        grid_step=0.25,
        max_rounds=2,
        coordinates=range(8),
    )
    print(
        f"LT model, MC oracle: objective {oracle.evaluate(initial):.2f} "
        f"-> {result.objective_value:.2f} after {result.rounds_run} rounds "
        f"({result.pair_updates} pair updates)"
    )


if __name__ == "__main__":
    main()
