#!/usr/bin/env python
"""Scenario: how does the optimal discount policy react to user sensitivity?

Reproduces the qualitative message of the paper's Theorem 6, Example 1 and
Table 4 on one network:

1. When *every* user is insensitive (``p(c) <= c``), continuous discounts
   cannot beat free products — the discrete-IM solution is already optimal
   (Theorem 6), and coordinate descent confirms it by staying at the
   integer configuration.
2. When users are sensitive (``p(c) >= c``), splitting the budget into
   partial discounts wins, and the margin grows with sensitivity.
3. On isolated nodes with linear curves (Example 1), spreading the budget
   across everyone beats seeding any single user by a factor approaching n.

Run:  python examples/discount_sensitivity_study.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CIMProblem,
    Configuration,
    CurvePopulation,
    IndependentCascade,
    LinearCurve,
    PowerCurve,
    exact_ui_ic,
    solve,
)
from repro.graphs import assign_weighted_cascade, erdos_renyi, isolated_nodes


def sensitivity_sweep() -> None:
    """UD/CD vs IM as the whole population's curve exponent varies."""
    num_users = 300
    graph = assign_weighted_cascade(erdos_renyi(num_users, 0.03, seed=5), alpha=1.0)
    model = IndependentCascade(graph)
    print("=== spread vs population sensitivity (budget 6) ===")
    print(f"{'curve':>12s} {'im':>8s} {'ud':>8s} {'cd':>8s} {'cd gain':>8s}")
    for exponent, label in ((2.0, "c^2"), (1.0, "c"), (0.5, "c^0.5"), (0.25, "c^0.25")):
        population = CurvePopulation.uniform(num_users, PowerCurve(exponent))
        problem = CIMProblem(model, population, budget=6.0)
        hypergraph = problem.build_hypergraph(seed=6)
        spreads = {}
        for method in ("im", "ud", "cd"):
            spreads[method] = solve(problem, method, hypergraph=hypergraph, seed=7).spread_estimate
        gain = (spreads["cd"] / spreads["im"] - 1.0) * 100.0
        print(
            f"{label:>12s} {spreads['im']:8.1f} {spreads['ud']:8.1f} "
            f"{spreads['cd']:8.1f} {gain:+7.1f}%"
        )
    print(
        "\ninsensitive users (exponent >= 1): free products are optimal "
        "(Theorem 6); sensitive users: partial discounts win.\n"
    )


def example1_isolated_nodes() -> None:
    """The paper's Example 1, computed exactly."""
    n, budget = 10, 1.0
    graph = isolated_nodes(n)
    population = CurvePopulation.uniform(n, LinearCurve())
    print("=== Example 1: isolated nodes, linear curves, B = 1 ===")
    single_seed = Configuration.integer([0], n)
    uniform = Configuration.uniform(budget, n)
    ui_seed = exact_ui_ic(graph, population.probabilities(single_seed.discounts))
    ui_uniform = exact_ui_ic(graph, population.probabilities(uniform.discounts))
    print(f"  one free product:        UI = {ui_seed:.4f}  (paper: 1)")
    print(f"  1/n discount to all:     UI = {ui_uniform:.4f}  (paper: 1, as n -> inf)")
    # With the concave sensitive curve the gap appears at finite n:
    from repro import ConcaveCurve

    sensitive = CurvePopulation.uniform(n, ConcaveCurve())
    ui_seed_s = exact_ui_ic(graph, sensitive.probabilities(single_seed.discounts))
    ui_uniform_s = exact_ui_ic(graph, sensitive.probabilities(uniform.discounts))
    print(f"  sensitive curves, seed:  UI = {ui_seed_s:.4f}")
    print(
        f"  sensitive curves, split: UI = {ui_uniform_s:.4f}  "
        f"({ui_uniform_s / ui_seed_s:.2f}x better)\n"
    )


def main() -> None:
    np.set_printoptions(precision=3)
    example1_isolated_nodes()
    sensitivity_sweep()


if __name__ == "__main__":
    main()
