#!/usr/bin/env python
"""Scenario: audit a network's influencers and compare campaign plans.

Analytics workflow around the core solvers:

1. price every user's individual influence from one RR hyper-graph
   (``influence_scores`` — unbiased singleton spreads, no extra
   simulation);
2. detect communities with label propagation and check how influence
   concentrates across them;
3. run the Eftekhar-style group-persuasion baseline on those communities
   vs per-user continuous discounts (CD), and
4. quantify how much two near-equal plans (UD vs CD vs greedy) actually
   agree using ``plan_overlap``.

Run:  python examples/influencer_audit.py
"""

from __future__ import annotations

import numpy as np

from repro import CIMProblem, IndependentCascade, paper_mixture, solve
from repro.analysis import plan_overlap, top_influencers
from repro.discrete.group_persuasion import group_persuasion
from repro.graphs import assign_weighted_cascade, label_propagation_communities, wiki_vote_like


def main() -> None:
    graph = assign_weighted_cascade(wiki_vote_like(scale=0.05, seed=51), alpha=1.0)
    population = paper_mixture(graph.num_nodes, seed=52)
    problem = CIMProblem(IndependentCascade(graph), population, budget=10.0)
    hypergraph = problem.build_hypergraph(seed=53)

    # --- 1. individual influence pricing --------------------------------
    print(f"network: n={graph.num_nodes}, m={graph.num_edges}")
    print("\n=== top influencers (singleton spread, from one hyper-graph) ===")
    for node, score in top_influencers(hypergraph, 5):
        degree = graph.out_degree(node)
        print(f"  user {node:4d}: I({{u}}) ~ {score:6.2f}   (out-degree {degree})")

    # --- 2. communities ---------------------------------------------------
    communities = label_propagation_communities(graph, seed=54, min_size=3)
    print(f"\n=== communities (label propagation): {len(communities)} found ===")
    for index, community in enumerate(communities[:5]):
        print(f"  community {index}: {community.size} users")

    # --- 3. group persuasion vs continuous discounts ---------------------
    # Marketers cap ad segments; split any oversized community into
    # segments of at most 20 users so some segment is always affordable.
    segments = []
    for community in communities:
        members = community.tolist()
        segments.extend(members[i : i + 20] for i in range(0, len(members), 20))
    impressions_budget = 40.0  # at 0.25 per-user worst case == CIM budget 10
    baseline = group_persuasion(
        hypergraph,
        segments,
        np.full(graph.num_nodes, 0.25),
        budget=impressions_budget,
    )
    cd = solve(problem, "cd", hypergraph=hypergraph, seed=55)
    print("\n=== group targeting vs per-user discounts (equal worst-case spend) ===")
    print(
        f"  group persuasion: spread {baseline.spread_estimate:7.1f} "
        f"({len(baseline.groups)} segments, {baseline.targeted_nodes.size} users)"
    )
    print(
        f"  continuous (CD):  spread {cd.spread_estimate:7.1f} "
        f"({cd.configuration.support.size} users, personalized)"
    )

    # --- 4. plan agreement -------------------------------------------------
    ud = solve(problem, "ud", hypergraph=hypergraph, seed=55)
    greedy = solve(problem, "greedy", hypergraph=hypergraph, seed=55)
    print("\n=== how much do near-equal plans agree? ===")
    for name, other in (("ud vs cd", ud), ("greedy vs cd", greedy)):
        overlap = plan_overlap(other.configuration, cd.configuration)
        print(
            f"  {name:>13s}: jaccard {overlap.jaccard:4.2f}, "
            f"budget overlap {overlap.budget_overlap:4.2f}, "
            f"discount correlation {overlap.discount_correlation:5.2f}"
        )


if __name__ == "__main__":
    main()
