#!/usr/bin/env python
"""Quickstart: solve one CIM instance end to end.

Builds a small social network, assigns the paper's purchase-probability
curve mixture, and compares the three strategies of the paper:

* ``im`` — classical discrete influence maximization (free products only),
* ``ud`` — one unified discount for a greedy-chosen target set,
* ``cd`` — per-user continuous discounts via coordinate descent.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CIMProblem,
    IndependentCascade,
    assign_weighted_cascade,
    erdos_renyi,
    paper_mixture,
    solve,
)


def main() -> None:
    # 1. A social network with weighted-cascade propagation probabilities
    #    (alpha / in_degree, the paper's Section 9.1 setting).
    num_users = 400
    graph = assign_weighted_cascade(erdos_renyi(num_users, 0.02, seed=1), alpha=1.0)

    # 2. Purchase-probability curves: 85% sensitive (2c - c^2), 10% linear,
    #    5% insensitive (c^2), randomly assigned.
    population = paper_mixture(num_users, seed=2)

    # 3. The CIM problem: spend a total discount budget of 8 "free products"
    #    worth of money, any split across users.
    problem = CIMProblem(IndependentCascade(graph), population, budget=8.0)

    # 4. Solve with each strategy on a shared random hyper-graph.
    hypergraph = problem.build_hypergraph(seed=3)
    print(f"network: n={graph.num_nodes}, m={graph.num_edges}, budget={problem.budget}")
    print(f"{'method':>8s} {'spread':>9s} {'cost':>7s}  configuration")
    for method in ("im", "ud", "cd"):
        result = solve(problem, method, hypergraph=hypergraph, seed=4)
        config = result.configuration
        support = config.support
        detail = f"{support.size} users get discounts"
        if method == "im":
            detail = f"{support.size} users get free products"
        elif method == "ud":
            detail = (
                f"{support.size} users get a "
                f"{result.extras['best_discount']:.0%} discount"
            )
        print(
            f"{method:>8s} {result.spread_estimate:9.1f} {config.cost:7.2f}  {detail}"
        )

    # 5. Evaluate the CD configuration with independent Monte-Carlo
    #    simulations (the paper's 20,000-simulation protocol, scaled down).
    cd_result = solve(problem, "cd", hypergraph=hypergraph, seed=4)
    estimate = problem.evaluate(cd_result.configuration, num_samples=3000, seed=5)
    lo, hi = estimate.confidence_interval()
    print(
        f"\nCD spread checked by Monte Carlo: {estimate.mean:.1f} "
        f"(95% CI [{lo:.1f}, {hi:.1f}])"
    )


if __name__ == "__main__":
    main()
