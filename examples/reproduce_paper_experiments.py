#!/usr/bin/env python
"""Regenerate every table and figure of the paper at a reduced scale.

Runs the full experiment harness — Table 2 datasets, Figure 3 spread
curves, Figure 4 approximation bounds, Figure 5 discount sweeps, Figure 6
running-time decomposition, Table 3 search-step study, Table 4 curve-mix
sensitivity — and prints the same rows/series the paper reports.

This is the orchestrated version of the per-exhibit benchmarks in
``benchmarks/``; see EXPERIMENTS.md for the paper-vs-measured discussion.

Run:  python examples/reproduce_paper_experiments.py [--scale 0.02]
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    figure3_influence_spread,
    figure4_approximation_bound,
    figure5_spread_vs_discount,
    figure6_running_time,
    table2_rows,
    table3_search_step,
    table4_sensitivity,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02, help="analogue scale")
    parser.add_argument(
        "--dataset", default="wiki-vote", help="dataset analogue to run on"
    )
    args = parser.parse_args()
    scale = args.scale
    dataset = args.dataset

    print("================ Table 2: datasets ================")
    print(f"{'network':>16s} {'paper n':>10s} {'paper m':>11s} {'ours n':>8s} {'ours m':>9s}")
    for row in table2_rows(scale=scale):
        print(
            f"{row['network']:>16s} {row['paper_n']:>10,d} {row['paper_m']:>11,d} "
            f"{row['analogue_n']:>8,d} {row['analogue_m']:>9,d}"
        )

    budgets = (10, 20, 30, 40, 50)
    for alpha in (0.7, 0.85, 1.0):
        print(f"\n========= Figure 3: influence spread ({dataset}, alpha={alpha}) =========")
        figure3_influence_spread(
            dataset=dataset, alpha=alpha, budgets=budgets, scale=scale, verbose=True
        )

    print(f"\n========= Figure 4: approximation lower bound ({dataset}) =========")
    figure4_approximation_bound(dataset=dataset, budgets=budgets, scale=scale, verbose=True)

    print(f"\n========= Figure 5: spread vs unified discount ({dataset}) =========")
    figure5_spread_vs_discount(dataset=dataset, budget=50, scale=scale, verbose=True)

    print(f"\n========= Figure 6: running time ({dataset}) =========")
    figure6_running_time(dataset=dataset, budgets=budgets, scale=scale, verbose=True)

    print(f"\n========= Table 3: search-step effect ({dataset}) =========")
    table3_search_step(dataset=dataset, budgets=budgets, scale=scale, verbose=True)

    print(f"\n========= Table 4: curve-mix sensitivity ({dataset}) =========")
    table4_sensitivity(dataset=dataset, budget=50, scale=scale, verbose=True)


if __name__ == "__main__":
    main()
