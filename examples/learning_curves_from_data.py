#!/usr/bin/env python
"""Scenario: learn purchase-probability curves from logs, then optimize.

The paper assumes the seed-probability functions are given and notes that
in reality "the best way to decide a user's seed probability function is
to learn from data."  This script closes that loop:

1. simulate historical coupon logs — each user segment was shown random
   discounts and either converted or not (ground truth: the paper's three
   curves);
2. fit a monotone piecewise-linear curve per segment with
   ``repro.core.curve_fitting`` (PAVA isotonic regression);
3. solve the same CIM instance with (a) the true curves and (b) the
   learned curves;
4. evaluate both discount plans under the *true* behaviour — measuring
   how much spread the estimation error costs.

Run:  python examples/learning_curves_from_data.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CIMProblem,
    ConcaveCurve,
    CurvePopulation,
    IndependentCascade,
    LinearCurve,
    QuadraticCurve,
    assign_weighted_cascade,
    erdos_renyi,
    solve,
)
from repro.core.curve_fitting import fit_piecewise_curve

TRUE_SEGMENTS = {
    "deal hunters": ConcaveCurve(),
    "typical users": LinearCurve(),
    "skeptics": QuadraticCurve(),
}
LOGS_PER_SEGMENT = 4000


def simulate_coupon_logs(rng) -> dict:
    """Historical offers: (discount shown, converted?) per segment."""
    logs = {}
    for name, curve in TRUE_SEGMENTS.items():
        observations = []
        for _ in range(LOGS_PER_SEGMENT):
            shown = float(rng.uniform(0.0, 1.0))
            observations.append((shown, bool(rng.random() < curve(shown))))
        logs[name] = observations
    return logs


def main() -> None:
    rng = np.random.default_rng(41)

    # 1-2. learn a curve per segment from the logs.
    logs = simulate_coupon_logs(rng)
    learned = {name: fit_piecewise_curve(obs, num_bins=10) for name, obs in logs.items()}
    print("=== learned vs true conversion probability ===")
    print(f"{'discount':>9s}", end="")
    for name in TRUE_SEGMENTS:
        print(f"  {name:>24s}", end="")
    print()
    for c in (0.2, 0.5, 0.8):
        print(f"{c:9.0%}", end="")
        for name in TRUE_SEGMENTS:
            print(
                f"   true {TRUE_SEGMENTS[name](c):.2f} / fit {learned[name](c):.2f}      ",
                end="",
            )
        print()
    print()

    # 3. solve with true vs learned curves on the same network.
    num_users = 300
    graph = assign_weighted_cascade(erdos_renyi(num_users, 0.03, seed=42), alpha=1.0)
    segment_of = rng.choice(list(TRUE_SEGMENTS), size=num_users, p=[0.6, 0.3, 0.1])
    true_population = CurvePopulation([TRUE_SEGMENTS[s] for s in segment_of])
    learned_population = CurvePopulation([learned[s] for s in segment_of])

    budget = 8.0
    true_problem = CIMProblem(IndependentCascade(graph), true_population, budget)
    learned_problem = CIMProblem(IndependentCascade(graph), learned_population, budget)
    hypergraph = true_problem.build_hypergraph(seed=43)

    plan_true = solve(true_problem, "cd", hypergraph=hypergraph, seed=44)
    plan_learned = solve(learned_problem, "cd", hypergraph=hypergraph, seed=44)

    # 4. score both plans under the TRUE behaviour.
    eval_true = true_problem.evaluate(plan_true.configuration, num_samples=4000, seed=45)
    eval_learned = true_problem.evaluate(
        plan_learned.configuration, num_samples=4000, seed=46
    )
    print("=== plans scored under true user behaviour ===")
    print(f"  plan from true curves:    spread {eval_true.mean:7.1f}")
    print(f"  plan from learned curves: spread {eval_learned.mean:7.1f}")
    gap = (1 - eval_learned.mean / eval_true.mean) * 100
    print(f"  estimation cost: {gap:.1f}% of spread")


if __name__ == "__main__":
    main()
